#include "apps/doall.h"

#include <cmath>

#include "common/assert.h"

namespace asyncgossip {

DoAllProcess::DoAllProcess(ProcessId id, DoAllConfig config)
    : id_(id),
      config_(config),
      rng_(config.seed ^ (0xD0A11ULL + id)),
      known_done_(config.tasks) {
  AG_ASSERT_MSG(config_.n >= 1 && id < config_.n, "bad process id / n");
  AG_ASSERT_MSG(config_.tasks >= 1, "do-all needs at least one task");
  AG_ASSERT_MSG(config_.fanout >= 1 && config_.fanout <= config_.n,
                "bad fanout");
}

bool DoAllProcess::quiescent() const {
  if (steps_taken_ == 0) return false;
  return all_done() && (!config_.share_knowledge ||
                        sleep_cnt_ >= config_.shutdown_steps);
}

void DoAllProcess::step(StepContext& ctx) {
  for (const Envelope& env : ctx.received()) {
    const auto* m = payload_cast<DoAllPayload>(env);
    if (m != nullptr && known_done_.merge(m->done)) cached_.reset();
  }

  // Execute one not-known-done task, chosen uniformly at random so that
  // concurrent processes rarely collide on the same task.
  if (!all_done()) {
    const std::size_t remaining = config_.tasks - known_done_.count();
    std::size_t pick = rng_.uniform(remaining);
    // Find the pick-th clear bit.
    for (std::size_t t = 0; t < config_.tasks; ++t) {
      if (known_done_.test(t)) continue;
      if (pick == 0) {
        known_done_.set(t);
        cached_.reset();
        ++executions_;
        break;
      }
      --pick;
    }
  }

  if (all_done()) {
    ++sleep_cnt_;
  } else {
    sleep_cnt_ = 0;
  }

  if (config_.share_knowledge && sleep_cnt_ <= config_.shutdown_steps) {
    if (!cached_) {
      auto snap = std::make_shared<DoAllPayload>();
      snap->done = known_done_;
      cached_ = std::move(snap);
    }
    if (config_.fanout == 1) {
      ctx.send(static_cast<ProcessId>(rng_.uniform(config_.n)), cached_);
    } else {
      for (std::uint64_t q :
           rng_.sample_without_replacement(config_.n, config_.fanout))
        ctx.send(static_cast<ProcessId>(q), cached_);
    }
  }
  ++steps_taken_;
}

std::unique_ptr<Process> DoAllProcess::clone() const {
  return std::make_unique<DoAllProcess>(*this);
}

DoAllOutcome run_doall(const DoAllSpec& spec) {
  const std::size_t n = spec.config.n;
  AG_ASSERT_MSG(n >= 2, "do-all spec needs n >= 2");
  AG_ASSERT_MSG(spec.f < n, "do-all spec needs f < n");

  std::vector<std::unique_ptr<Process>> procs;
  procs.reserve(n);
  for (std::size_t p = 0; p < n; ++p) {
    DoAllConfig cfg = spec.config;
    cfg.seed = spec.config.seed ^ (spec.seed * 0x9E3779B97F4A7C15ULL);
    procs.push_back(
        std::make_unique<DoAllProcess>(static_cast<ProcessId>(p), cfg));
  }

  ObliviousConfig adv;
  adv.n = n;
  adv.d = spec.d;
  adv.delta = spec.delta;
  adv.schedule = spec.schedule;
  adv.delay = spec.d == 1 ? DelayPattern::kUnitDelay : DelayPattern::kUniform;
  adv.crash_plan = random_crashes(n, spec.f, spec.crash_horizon,
                                  spec.seed ^ 0xD0A11F417ULL);
  adv.seed = spec.seed ^ 0xAD7D0A11ULL;

  EngineConfig ecfg;
  ecfg.d = spec.d;
  ecfg.delta = spec.delta;
  ecfg.max_crashes = spec.f;

  Engine engine(std::move(procs), std::make_unique<ObliviousAdversary>(adv),
                ecfg);

  const auto quiet = [](const Engine& e) {
    if (!e.network_empty()) return false;
    for (ProcessId p = 0; p < e.n(); ++p) {
      if (e.crashed(p)) continue;
      if (!e.process_as<DoAllProcess>(p).quiescent()) return false;
    }
    return true;
  };

  Time budget = spec.max_steps;
  if (budget == 0) {
    budget = static_cast<Time>(
        64.0 * (static_cast<double>(spec.config.tasks) +
                std::log2(static_cast<double>(n)) + 16.0) *
        static_cast<double>(spec.d + spec.delta));
  }

  DoAllOutcome out;
  out.completed = engine.run_until(quiet, budget);
  const Metrics& m = engine.metrics();
  out.completion_time = m.any_send() ? m.last_send_time() + 1 : engine.now();
  out.messages = m.messages_sent();
  out.alive = engine.alive_count();

  DynamicBitset executed_union(spec.config.tasks);
  bool all_know = true;
  for (ProcessId p = 0; p < engine.n(); ++p) {
    const auto& dp = engine.process_as<DoAllProcess>(p);
    out.total_work += dp.executions();
    if (engine.crashed(p)) continue;
    executed_union |= dp.known_done();
    if (!dp.all_done()) all_know = false;
  }
  out.tasks_executed = executed_union.count();
  out.completed = out.completed && all_know;
  return out;
}

}  // namespace asyncgossip
