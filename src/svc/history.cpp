#include "svc/history.h"

#include <algorithm>
#include <istream>
#include <map>
#include <sstream>

#include "svc/kv.h"

namespace asyncgossip {
namespace svc {

namespace {

/// Unused positions (a get's value, a put's comparand, a miss's read value)
/// are written as the placeholder "-". Parsing is op/found-aware instead of
/// textual: a "-" in a *meaningful* position is the literal token (the CAS
/// absent-comparand in kv.cpp is exactly that), and meaningful fields are
/// never empty (token_ok), so the round-trip is lossless.
std::string pack(const std::string& s) { return s.empty() ? "-" : s; }

}  // namespace

std::string encode_log_entry(const CommittedEntry& entry) {
  std::ostringstream os;
  os << entry.seq << ' ' << to_string(entry.cmd.op) << ' ' << entry.cmd.client
     << ' ' << entry.cmd.client_seq << ' ' << pack(entry.cmd.key) << ' '
     << pack(entry.cmd.value) << ' ' << pack(entry.cmd.expected) << ' '
     << (entry.ok ? 1 : 0) << ' ' << (entry.found ? 1 : 0) << ' '
     << pack(entry.read_value);
  return os.str();
}

bool parse_log_entry(const std::string& line, CommittedEntry* out) {
  std::istringstream is(line);
  std::string op, key, value, expected, read_value;
  int ok = 0, found = 0;
  if (!(is >> out->seq >> op >> out->cmd.client >> out->cmd.client_seq >>
        key >> value >> expected >> ok >> found >> read_value))
    return false;
  if (!op_from_string(op, &out->cmd.op)) return false;
  out->cmd.key = key;
  out->cmd.value = out->cmd.op == SvcOp::kGet ? std::string() : value;
  out->cmd.expected = out->cmd.op == SvcOp::kCas ? expected : std::string();
  out->ok = ok != 0;
  out->found = found != 0;
  out->read_value = out->cmd.op == SvcOp::kGet && out->found
                        ? read_value
                        : std::string();
  std::string extra;
  return !(is >> extra);
}

std::string encode_observation(const Observation& obs) {
  std::ostringstream os;
  os << to_string(obs.cmd.op) << ' ' << obs.cmd.client << ' '
     << obs.cmd.client_seq << ' ' << pack(obs.cmd.key) << ' '
     << pack(obs.cmd.value) << ' ' << pack(obs.cmd.expected) << ' '
     << (obs.result.ok ? 1 : 0) << ' ' << (obs.result.unavailable ? 1 : 0)
     << ' ' << obs.result.seq << ' ' << (obs.result.found ? 1 : 0) << ' '
     << pack(obs.result.value);
  return os.str();
}

bool parse_observation(const std::string& line, Observation* out) {
  std::istringstream is(line);
  std::string op, key, value, expected, rvalue;
  int ok = 0, unavailable = 0, found = 0;
  if (!(is >> op >> out->cmd.client >> out->cmd.client_seq >> key >> value >>
        expected >> ok >> unavailable >> out->result.seq >> found >> rvalue))
    return false;
  if (!op_from_string(op, &out->cmd.op)) return false;
  out->cmd.key = key;
  out->cmd.value = out->cmd.op == SvcOp::kGet ? std::string() : value;
  out->cmd.expected = out->cmd.op == SvcOp::kCas ? expected : std::string();
  out->result.ok = ok != 0;
  out->result.unavailable = unavailable != 0;
  out->result.found = found != 0;
  out->result.value = out->result.found ? rvalue : std::string();
  std::string extra;
  return !(is >> extra);
}

namespace {

bool read_lines(std::istream& is, const char* header,
                const char* what,
                bool (*parse)(const std::string&, void*), void* out,
                std::string* error) {
  std::string line;
  if (!std::getline(is, line) || line.rfind(header, 0) != 0) {
    *error = std::string("missing ") + header + " header";
    return false;
  }
  std::size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    if (!parse(line, out)) {
      *error = std::string("unparsable ") + what + " line " +
               std::to_string(lineno) + ": " + line;
      return false;
    }
  }
  return true;
}

bool parse_log_into(const std::string& line, void* out) {
  CommittedEntry e;
  if (!parse_log_entry(line, &e)) return false;
  static_cast<std::vector<CommittedEntry>*>(out)->push_back(std::move(e));
  return true;
}

bool parse_obs_into(const std::string& line, void* out) {
  Observation o;
  if (!parse_observation(line, &o)) return false;
  static_cast<std::vector<Observation>*>(out)->push_back(std::move(o));
  return true;
}

}  // namespace

bool read_log(std::istream& is, std::vector<CommittedEntry>* out,
              std::string* error) {
  return read_lines(is, kLogHeader, "log", &parse_log_into, out, error);
}

bool read_observations(std::istream& is, std::vector<Observation>* out,
                       std::string* error) {
  return read_lines(is, kObsHeader, "observation", &parse_obs_into, out,
                    error);
}

HistoryReport check_history(const std::vector<CommittedEntry>& log,
                            const std::vector<Observation>& observations) {
  HistoryReport report;
  report.entries = log.size();
  report.observations = observations.size();
  const auto fail = [&](const std::string& msg) {
    report.error = msg;
    return report;
  };

  // (1) Dense, 1-based, in-order sequence numbers.
  for (std::size_t i = 0; i < log.size(); ++i)
    if (log[i].seq != i + 1)
      return fail("log seq " + std::to_string(log[i].seq) + " at position " +
                  std::to_string(i) + " (want " + std::to_string(i + 1) +
                  "): log has holes or reorderings");

  // (2) Replay through the real transition function; every recorded result
  // must match (stale reads and phantom CAS outcomes surface here).
  KvStore replay;
  for (const CommittedEntry& e : log) {
    const CommandResult r = replay.apply(e.cmd);
    const std::string at = "log seq " + std::to_string(e.seq) + " (" +
                           to_string(e.cmd.op) + " " + e.cmd.key + "): ";
    if (r.ok != e.ok)
      return fail(at + "recorded ok=" + std::to_string(e.ok) +
                  " but replay says " + std::to_string(r.ok));
    if (e.cmd.op == SvcOp::kGet) {
      if (r.found != e.found)
        return fail(at + "recorded found=" + std::to_string(e.found) +
                    " but replay says " + std::to_string(r.found));
      if (r.value != e.read_value)
        return fail(at + "stale read: returned '" + e.read_value +
                    "', linearized state holds '" + r.value + "'");
    }
  }

  // (3) Every acked observation matches the log at its seq; (4) per-client
  // session order along the log.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> committed;
  for (const CommittedEntry& e : log)
    committed[{e.cmd.client, e.cmd.client_seq}] = e.seq;
  std::map<std::uint64_t, std::uint64_t> last_client_seq;
  for (const Observation& o : observations) {
    const std::string at = "observation client " +
                           std::to_string(o.cmd.client) + " cseq " +
                           std::to_string(o.cmd.client_seq) + ": ";
    if (o.result.unavailable) {
      ++report.unavailable;
      // Honest unavailability: the command must NOT appear in the log.
      const auto it = committed.find({o.cmd.client, o.cmd.client_seq});
      if (it != committed.end())
        return fail(at + "acked unavailable but committed at seq " +
                    std::to_string(it->second));
      continue;
    }
    ++report.acked;
    if (o.result.seq == 0 || o.result.seq > log.size())
      return fail(at + "lost write: acked at seq " +
                  std::to_string(o.result.seq) + " but log has " +
                  std::to_string(log.size()) + " entries");
    const CommittedEntry& e = log[o.result.seq - 1];
    if (e.cmd.client != o.cmd.client || e.cmd.client_seq != o.cmd.client_seq)
      return fail(at + "lost write: log seq " + std::to_string(o.result.seq) +
                  " holds a different command");
    if (e.cmd.op != o.cmd.op || e.cmd.key != o.cmd.key ||
        e.cmd.value != o.cmd.value || e.cmd.expected != o.cmd.expected)
      return fail(at + "command mismatch against log seq " +
                  std::to_string(o.result.seq));
    if (e.ok != o.result.ok || e.found != o.result.found ||
        (o.cmd.op == SvcOp::kGet && e.read_value != o.result.value))
      return fail(at + "result mismatch against log seq " +
                  std::to_string(o.result.seq));
  }

  // (4) Session order: acked client_seqs strictly increase in log order.
  std::vector<const Observation*> acked;
  for (const Observation& o : observations)
    if (!o.result.unavailable) acked.push_back(&o);
  std::sort(acked.begin(), acked.end(),
            [](const Observation* a, const Observation* b) {
              return a->result.seq < b->result.seq;
            });
  for (const Observation* o : acked) {
    auto [it, inserted] =
        last_client_seq.emplace(o->cmd.client, o->cmd.client_seq);
    if (!inserted) {
      if (o->cmd.client_seq <= it->second)
        return fail("client " + std::to_string(o->cmd.client) +
                    " session order violated at cseq " +
                    std::to_string(o->cmd.client_seq));
      it->second = o->cmd.client_seq;
    }
  }

  report.ok = true;
  return report;
}

}  // namespace svc
}  // namespace asyncgossip
