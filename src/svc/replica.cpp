#include "svc/replica.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "consensus/cr_gossip.h"
#include "consensus/get_core.h"
#include "sim/engine.h"
#include "sim/oblivious.h"

namespace asyncgossip {
namespace svc {

ReplicaGroup::ReplicaGroup(const ReplicaGroupConfig& config)
    : config_(config),
      crash_slot_(config.n, 0),
      stall_rng_(config.seed ^ 0x57A11F4B7ULL) {
  AG_ASSERT_MSG(config_.n >= 3, "replica group needs n >= 3");
  AG_ASSERT_MSG(config_.f < (config_.n + 1) / 2,
                "replica group needs f < n/2");
  AG_ASSERT_MSG(is_consensus_algorithm(config_.algorithm),
                "replica group needs a cr-* algorithm");
  // Seed-derived fault plan: distinct victims, crash slots uniform in
  // [1, horizon]. Deliberately may exceed f (honest-unavailability soaks).
  Xoshiro256SS rng(config_.seed ^ 0xC4A54D15ULL);
  const std::size_t count = std::min(config_.inject_crashes, config_.n);
  const std::uint64_t horizon = std::max<std::uint64_t>(
      config_.crash_horizon_slots, 1);
  std::size_t placed = 0;
  while (placed < count) {
    const auto victim = static_cast<std::size_t>(rng.uniform(config_.n));
    if (crash_slot_[victim] != 0) continue;
    crash_slot_[victim] = 1 + rng.uniform(horizon);
    ++placed;
  }
}

std::size_t ReplicaGroup::alive() const {
  std::size_t alive = 0;
  for (const std::uint64_t s : crash_slot_)
    if (s == 0 || s > slot_) ++alive;
  return alive;
}

CommitOutcome ReplicaGroup::commit_slot() {
  ++slot_;
  CommitOutcome out;
  out.slot = slot_;
  out.stalled = config_.stall_probability > 0.0 &&
                stall_rng_.bernoulli(config_.stall_probability);

  // Replicas crashed by this slot are dead from the slot's first tick.
  CrashPlan plan;
  for (std::size_t p = 0; p < config_.n; ++p)
    if (crash_slot_[p] != 0 && crash_slot_[p] <= slot_)
      plan.emplace_back(Time{1}, static_cast<ProcessId>(p));
  out.alive = config_.n - plan.size();
  if (out.alive < majority_threshold(config_.n)) {
    out.unavailable = true;  // fail fast: a minority cannot commit
    return out;
  }

  ConsensusConfig ccfg;
  ccfg.n = config_.n;
  ccfg.f = config_.f;
  ccfg.exchange = exchange_for_algorithm(config_.algorithm);
  ccfg.seed = config_.seed ^ (slot_ * 0x9E3779B97F4A7C15ULL);

  std::vector<std::unique_ptr<Process>> procs;
  procs.reserve(config_.n);
  for (std::size_t p = 0; p < config_.n; ++p)
    procs.push_back(std::make_unique<ConsensusProcess>(
        static_cast<ProcessId>(p), Val{1}, ccfg));

  ObliviousConfig adv;
  adv.n = config_.n;
  adv.d = out.stalled ? 4 * config_.d : config_.d;
  adv.delta = config_.delta;
  adv.crash_plan = plan;
  adv.seed = ccfg.seed ^ 0xAD7C025ULL;

  EngineConfig ecfg;
  ecfg.d = adv.d;
  ecfg.delta = adv.delta;
  ecfg.max_crashes = plan.size();

  Engine engine(std::move(procs), std::make_unique<ObliviousAdversary>(adv),
                ecfg);
  const double lg = std::log2(static_cast<double>(config_.n)) + 1.0;
  const Time budget = static_cast<Time>(
      2000.0 * lg * lg * static_cast<double>(adv.d + adv.delta) +
      static_cast<double>(64 * config_.n));

  out.committed = engine.run_until(consensus_all_decided, budget);
  out.decision_time = engine.now();
  out.messages = engine.metrics().messages_sent();
  out.bytes = engine.metrics().bytes_sent();
  for (ProcessId p = 0; p < engine.n(); ++p) {
    if (engine.crashed(p)) continue;
    const auto& cp = engine.process_as<ConsensusProcess>(p);
    out.decision_phase = std::max(out.decision_phase, cp.decided_phase());
    // All-1 inputs: validity pins any decision to 1.
    if (cp.decided()) AG_ASSERT_MSG(cp.decision() == 1, "validity violated");
  }
  return out;
}

}  // namespace svc
}  // namespace asyncgossip
