// Fixed-capacity dynamic bitset used for rumor sets and informed-lists.
//
// Rumors are identified by the originating process id, so a rumor set over n
// processes is exactly n bits; the EARS informed-list I(p) is n such sets
// (one per rumor). Union (operator|=) is the hot operation: a process
// receiving a gossip message merges the sender's knowledge into its own.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace asyncgossip {

class DynamicBitset {
 public:
  DynamicBitset() = default;

  /// Creates a bitset of `size` bits, all clear.
  explicit DynamicBitset(std::size_t size);

  std::size_t size() const { return size_; }

  void set(std::size_t i);
  void reset(std::size_t i);
  bool test(std::size_t i) const;

  /// Sets bit i and reports whether it was previously clear.
  bool set_and_check(std::size_t i);

  void set_all();
  void clear_all();

  /// Number of set bits.
  std::size_t count() const;

  bool any() const;
  bool none() const { return !any(); }
  bool all() const { return count() == size_; }

  /// this |= other. Returns true iff any bit newly became set — the engine
  /// and algorithms use this to detect "learned something new".
  bool merge(const DynamicBitset& other);

  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& operator&=(const DynamicBitset& other);

  /// True iff every set bit of *this is also set in `other`.
  bool subset_of(const DynamicBitset& other) const;

  /// Index of the first clear bit, or size() if all bits are set.
  std::size_t first_clear() const;

  /// Indices of all set bits, ascending.
  std::vector<std::size_t> set_bits() const;

  /// Calls f(i) for every set bit i, ascending.
  template <typename F>
  void for_each_set(F&& f) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        f(w * 64 + static_cast<std::size_t>(b));
        bits &= bits - 1;
      }
    }
  }

  /// Bytes of a natural wire encoding (the packed words).
  std::size_t byte_size() const { return words_.size() * sizeof(std::uint64_t); }

  /// FNV-1a over the words; used for execution trace hashing in tests.
  std::uint64_t hash() const;

  friend bool operator==(const DynamicBitset& a, const DynamicBitset& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

 private:
  void check_index(std::size_t i) const;

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace asyncgossip
