#include "sim/engine.h"

#include <algorithm>

namespace asyncgossip {

// ---------------------------------------------------------------------------
// EngineView
// ---------------------------------------------------------------------------

std::size_t EngineView::n() const { return engine_->n(); }
Time EngineView::now() const { return engine_->now(); }
bool EngineView::crashed(ProcessId p) const { return engine_->crashed(p); }
std::size_t EngineView::alive_count() const { return engine_->alive_count(); }
std::size_t EngineView::crash_budget_left() const {
  return engine_->config().max_crashes - engine_->crashes_so_far();
}
const Process& EngineView::process(ProcessId p) const {
  return engine_->process(p);
}
const Metrics& EngineView::metrics() const { return engine_->metrics(); }
std::size_t EngineView::in_flight_count() const {
  return engine_->in_flight_count();
}
std::vector<Envelope> EngineView::pending_for(ProcessId p) const {
  return engine_->pending_for(p);
}
std::size_t EngineView::pending_count(ProcessId p) const {
  return engine_->pending_count(p);
}
std::uint64_t EngineView::local_steps_of(ProcessId p) const {
  return engine_->local_steps_of(p);
}
std::unique_ptr<Process> EngineView::fork_process(ProcessId p) const {
  return engine_->fork_process(p);
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine(std::vector<std::unique_ptr<Process>> processes,
               std::unique_ptr<Adversary> adversary, EngineConfig config)
    : config_(config),
      processes_(std::move(processes)),
      adversary_(std::move(adversary)),
      metrics_(processes_.size()),
      crashed_(processes_.size(), false),
      alive_count_(processes_.size()),
      mailbox_(processes_.size()),
      in_flight_total_(0),
      last_step_time_(processes_.size(), 0),
      stepped_once_(processes_.size(), false),
      local_steps_(processes_.size(), 0) {
  if (processes_.empty()) throw ApiError("Engine needs at least one process");
  for (const auto& p : processes_)
    if (p == nullptr) throw ApiError("null process");
  if (adversary_ == nullptr) throw ApiError("null adversary");
  if (config_.d < 1 || config_.delta < 1)
    throw ApiError("model bounds d and delta must be >= 1");
  if (config_.max_crashes >= processes_.size())
    throw ApiError("crash budget f must satisfy f < n");
}

void Engine::run(Time steps) {
  for (Time i = 0; i < steps; ++i) advance_one_step();
}

bool Engine::run_until(const std::function<bool(const Engine&)>& done,
                       Time max_steps) {
  for (Time i = 0; i < max_steps; ++i) {
    if (done(*this)) return true;
    advance_one_step();
  }
  return done(*this);
}

std::vector<Envelope> Engine::pending_for(ProcessId p) const {
  return {mailbox_[p].begin(), mailbox_[p].end()};
}

void Engine::hash_mix(std::uint64_t v) {
  trace_hash_ ^= v;
  trace_hash_ *= 0x100000001b3ULL;
}

void Engine::apply_crashes(const std::vector<ProcessId>& crash_list) {
  for (ProcessId p : crash_list) {
    AG_ASSERT_MSG(p < processes_.size(), "crash target out of range");
    if (crashed_[p]) continue;
    if (crashes_ + 1 > config_.max_crashes)
      throw ModelViolation("adversary exceeded crash budget f");
    crashed_[p] = true;
    ++crashes_;
    --alive_count_;
    metrics_.record_crash();
    for (EngineObserver* o : observers_) o->on_crash(now_, p);
    // A crashed process never steps again; its pending messages are moot.
    in_flight_total_ -= mailbox_[p].size();
    mailbox_[p].clear();
    hash_mix(0xC0DEull ^ p);
  }
}

std::vector<ProcessId> Engine::effective_schedule(
    const std::vector<ProcessId>& proposed) {
  std::vector<bool> want(processes_.size(), false);
  for (ProcessId p : proposed) {
    AG_ASSERT_MSG(p < processes_.size(), "scheduled process out of range");
    if (!crashed_[p]) want[p] = true;
  }
  // Enforce the delta contract: a live process whose deadline has arrived
  // must step now.
  for (ProcessId p = 0; p < processes_.size(); ++p) {
    if (crashed_[p] || want[p]) continue;
    const Time deadline = stepped_once_[p] ? last_step_time_[p] + config_.delta
                                           : config_.delta - 1;
    if (now_ >= deadline) {
      if (config_.strict)
        throw ModelViolation(
            "adversary left a live process unscheduled past its delta "
            "deadline");
      want[p] = true;
    }
  }
  std::vector<ProcessId> result;
  for (ProcessId p = 0; p < processes_.size(); ++p)
    if (want[p]) result.push_back(p);
  return result;
}

std::vector<Envelope> Engine::collect_deliveries(ProcessId p) {
  std::vector<Envelope> delivered;
  auto& box = mailbox_[p];
  const Time prev_step = stepped_once_[p] ? last_step_time_[p] : kTimeMax;
  std::deque<Envelope> kept;
  for (auto& env : box) {
    if (env.deliver_after <= now_) {
      metrics_.record_delivery(p, env.send_time, prev_step, now_);
      for (EngineObserver* o : observers_) o->on_delivery(env, now_);
      hash_mix(0xDE11ull ^ env.id);
      delivered.push_back(std::move(env));
    } else {
      kept.push_back(std::move(env));
    }
  }
  in_flight_total_ -= delivered.size();
  box = std::move(kept);
  return delivered;
}

void Engine::dispatch_sends(ProcessId from,
                            std::vector<StepContext::Outgoing>&& out) {
  const EngineView view(*this);
  for (auto& o : out) {
    AG_ASSERT_MSG(o.to < processes_.size(), "send target out of range");
    Envelope env;
    env.id = next_message_id_++;
    env.from = from;
    env.to = o.to;
    env.send_time = now_;
    env.payload = std::move(o.payload);
    Time delay = adversary_->message_delay(env, view);
    delay = std::clamp<Time>(delay, 1, config_.d);
    env.deliver_after = now_ + delay;
    metrics_.record_send(from, now_,
                          env.payload ? env.payload->byte_size() : 0);
    for (EngineObserver* obs : observers_) obs->on_send(env);
    hash_mix(0x5E4Dull ^ env.id ^ (static_cast<std::uint64_t>(env.to) << 32));
    pending_sends_.push_back(std::move(env));
  }
}

void Engine::advance_one_step() {
  const EngineView view(*this);
  StepDecision decision = adversary_->decide(now_, view);

  apply_crashes(decision.crash);
  const std::vector<ProcessId> schedule =
      effective_schedule(decision.schedule);

  for (ProcessId p : schedule) {
    const Time gap =
        stepped_once_[p] ? now_ - last_step_time_[p] : now_ + 1;
    metrics_.record_gap(gap);
    for (EngineObserver* o : observers_) o->on_step(now_, p);
    const std::vector<Envelope> delivered = collect_deliveries(p);
    StepContext ctx(p, processes_.size(), local_steps_[p], delivered);
    ctx.attach_probe(probe_sink_, now_);
    processes_[p]->step(ctx);
    dispatch_sends(p, std::move(ctx.outbox()));
    last_step_time_[p] = now_;
    stepped_once_[p] = true;
    ++local_steps_[p];
    metrics_.record_local_step();
    hash_mix(0x57E4ull ^ p ^ (now_ << 16));
  }

  // Simultaneous-step semantics: messages produced during step t enter the
  // network only after every scheduled process has stepped, so no message
  // can be relayed within the step it was sent.
  for (auto& env : pending_sends_) {
    if (crashed_[env.to]) continue;  // delivery to a crashed process is moot
    mailbox_[env.to].push_back(std::move(env));
    ++in_flight_total_;
  }
  pending_sends_.clear();
  metrics_.record_in_flight(in_flight_total_);

  ++now_;
}

}  // namespace asyncgossip
