// aglint-fixture-as: src/rt/clock.h
// aglint-expect: none
//
// src/rt/clock.h is the one file allowed to read real clocks (the
// AG-DET-002 exemption in tools/aglint/rules.json).
#include <chrono>

namespace asyncgossip {

inline long long blessed_wall_now_us() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace asyncgossip
