// Gossip-facing process interface.
//
// Rumors are identified with their originating process: rumor r_p is "bit p".
// A rumor set over n processes is a DynamicBitset of n bits. Validity (the
// paper's requirement that only genuine initial rumors are ever added) holds
// by construction in this representation: a set bit can only originate from
// the owning process's initialization and spread by union.
#pragma once

#include <string>

#include "common/bitset.h"
#include "sim/process.h"

namespace asyncgossip {

class GossipProcess : public Process {
 public:
  /// The rumor collection V(p).
  virtual const DynamicBitset& rumors() const = 0;

  /// True iff the process, given no further message receipts, will send no
  /// further messages (EARS: asleep after the shut-down phase; TEARS: all
  /// trigger-driven sends exhausted). A process that has not yet taken its
  /// first local step is never quiescent.
  virtual bool quiescent() const = 0;

  /// Total local steps executed (the process's own step counter).
  virtual std::uint64_t local_steps() const = 0;

  /// Optional algorithm-specific end-of-run summary (single line, no
  /// newlines). Plain gossip has none; consensus processes report their
  /// decision here so runtime drivers can carry a per-process verdict
  /// across thread and process boundaries without knowing the algorithm.
  virtual std::string final_note() const { return {}; }
};

}  // namespace asyncgossip
