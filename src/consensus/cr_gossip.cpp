#include "consensus/cr_gossip.h"

#include <sstream>

#include "common/assert.h"
#include "common/rng.h"
#include "consensus/canetti_rabin.h"

namespace asyncgossip {

ExchangeKind exchange_for_algorithm(GossipAlgorithm algorithm) {
  switch (algorithm) {
    case GossipAlgorithm::kCrEars:
      return ExchangeKind::kEars;
    case GossipAlgorithm::kCrSears:
      return ExchangeKind::kSears;
    case GossipAlgorithm::kCrTears:
      return ExchangeKind::kTears;
    default:
      AG_ASSERT_MSG(false, "not a consensus algorithm");
      return ExchangeKind::kAllToAll;
  }
}

Val consensus_input_for(const GossipSpec& spec, ProcessId p) {
  // Same derivation as make_consensus_engine's InputPattern::kRandom: one
  // rng seeded from the spec seed, drawn sequentially, so any builder that
  // needs only process p's input still walks the same sequence.
  Xoshiro256SS input_rng(spec.seed ^ 0x1B9075ULL);
  Val input = 0;
  for (ProcessId q = 0; q <= p; ++q)
    input = input_rng.bernoulli(0.5) ? Val{1} : Val{0};
  return input;
}

namespace {

std::vector<std::unique_ptr<Process>> make_cr_processes(
    const GossipSpec& spec) {
  AG_ASSERT_MSG(spec.n >= 3, "cr-* algorithms need n >= 3");
  AG_ASSERT_MSG(spec.f < (spec.n + 1) / 2, "cr-* algorithms need f < n/2");
  ConsensusConfig cfg;
  cfg.n = spec.n;
  cfg.f = spec.f;
  cfg.exchange = exchange_for_algorithm(spec.algorithm);
  cfg.sears_epsilon = spec.sears_epsilon;
  cfg.sears_fanout_constant = spec.sears_fanout_constant;
  // GossipSpec's TEARS knob defaults (4.0 / 8.0) are tuned for plain TEARS
  // gossip; the consensus exchanges use the consensus layer's scaled-down
  // defaults (1.0 / 1.0 — see gossip/tears.h on why). Map proportionally so
  // explicit spec overrides still bite.
  cfg.tears_a_constant = spec.tears_a_constant / 4.0;
  cfg.tears_kappa_constant = spec.tears_kappa_constant / 8.0;
  cfg.seed = spec.seed;

  Xoshiro256SS input_rng(spec.seed ^ 0x1B9075ULL);
  std::vector<std::unique_ptr<Process>> procs;
  procs.reserve(spec.n);
  for (std::size_t p = 0; p < spec.n; ++p) {
    const Val input = input_rng.bernoulli(0.5) ? Val{1} : Val{0};
    procs.push_back(std::make_unique<ConsensusProcess>(
        static_cast<ProcessId>(p), input, cfg));
  }
  return procs;
}

}  // namespace

void register_consensus_algorithms() {
  set_consensus_process_factory(&make_cr_processes);
}

std::string format_consensus_note(const ConsensusNote& note) {
  std::ostringstream os;
  os << "cr decided=" << (note.decided ? 1 : 0)
     << " value=" << static_cast<int>(note.value)
     << " input=" << static_cast<int>(note.input) << " phase=" << note.phase
     << " viol=" << note.core_violations << " reann=" << note.reannouncements;
  return os.str();
}

ConsensusNote parse_consensus_note(const std::string& text) {
  ConsensusNote note;
  std::istringstream is(text);
  std::string tag;
  if (!(is >> tag) || tag != "cr") return note;
  std::string field;
  int decoded = 0;
  while (is >> field) {
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos) return {};
    const std::string key = field.substr(0, eq);
    long long value = 0;
    try {
      value = std::stoll(field.substr(eq + 1));
    } catch (...) {
      return {};
    }
    if (key == "decided") note.decided = value != 0;
    else if (key == "value") note.value = static_cast<Val>(value);
    else if (key == "input") note.input = static_cast<Val>(value);
    else if (key == "phase") note.phase = static_cast<std::uint32_t>(value);
    else if (key == "viol")
      note.core_violations = static_cast<std::uint64_t>(value);
    else if (key == "reann")
      note.reannouncements = static_cast<std::uint64_t>(value);
    else
      return {};
    ++decoded;
  }
  note.valid = decoded == 6;
  return note;
}

std::string ConsensusVerdict::summary() const {
  std::ostringstream os;
  // decided_count can exceed survivors: a process that decided and then
  // crashed still reported a decision through its note.
  os << (ok() ? "ok" : "FAIL") << ": " << survivors
     << " survivors, " << decided_count << " decided";
  if (decided_count > 0)
    os << ", value " << static_cast<int>(decided_value) << " at phase "
       << decision_phase;
  if (!agreement) os << ", AGREEMENT VIOLATED";
  if (!validity) os << ", VALIDITY VIOLATED";
  if (core_violations > 0) os << ", " << core_violations << " core violations";
  return os.str();
}

ConsensusVerdict judge_consensus_notes(const std::vector<std::string>& notes,
                                       const std::vector<bool>& crashed) {
  AG_ASSERT_MSG(crashed.size() == notes.size(),
                "judge_consensus_notes: notes/crashed size mismatch");
  ConsensusVerdict v;
  v.all_decided = true;
  v.agreement = true;
  bool saw0_input = false, saw1_input = false;
  for (std::size_t p = 0; p < notes.size(); ++p) {
    const ConsensusNote note = parse_consensus_note(notes[p]);
    if (!note.valid) {
      // A missing/garbled note is a failed process verdict, not a crash.
      if (!crashed[p]) v.all_decided = false;
      continue;
    }
    if (note.input == 0) saw0_input = true;
    if (note.input == 1) saw1_input = true;
    // Decisions count wherever they happened — a process that decided
    // before crashing still binds agreement (uniform agreement holds under
    // crash faults).
    if (note.decided) {
      ++v.decided_count;
      if (v.decided_value == kValUnknown) v.decided_value = note.value;
      else if (v.decided_value != note.value) v.agreement = false;
      if (note.phase > v.decision_phase) v.decision_phase = note.phase;
    }
    if (!crashed[p]) {
      ++v.survivors;
      if (!note.decided) v.all_decided = false;
      v.core_violations += note.core_violations;
      v.reannouncements += note.reannouncements;
    }
  }
  if (v.survivors == 0) v.all_decided = false;
  v.validity = v.decided_count == 0 ||
               (v.decided_value == 0 && saw0_input) ||
               (v.decided_value == 1 && saw1_input);
  if (v.decided_count == 0) v.validity = false;
  return v;
}

}  // namespace asyncgossip
