file(REMOVE_RECURSE
  "CMakeFiles/gossiplab.dir/gossiplab.cpp.o"
  "CMakeFiles/gossiplab.dir/gossiplab.cpp.o.d"
  "gossiplab"
  "gossiplab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossiplab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
