# Empty compiler generated dependencies file for doall_demo.
# This may be replaced when dependencies are built.
