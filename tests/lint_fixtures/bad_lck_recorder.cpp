// aglint-fixture-as: src/common/flight_recorder.cpp
// aglint-expect: AG-LCK-002
//
// The flight recorder's lock-freedom is a lint-enforced contract, not a
// convention: AG-LCK-002 covers the recorder files (rules.json), so a
// std::mutex sneaking into the push path — which must stay wait-free on
// the rt workers' hot loop — fails the gate. This fixture proves the rule
// fires outside src/rt too.
#include <mutex>

namespace asyncgossip {

std::mutex recorder_mu;  // AG-LCK-002
unsigned long long pushed = 0;

void record_locked() {
  const std::lock_guard<std::mutex> lock(recorder_mu);  // AG-LCK-002
  ++pushed;
}

}  // namespace asyncgossip
