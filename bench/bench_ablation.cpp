// Ablations of the design choices called out in DESIGN.md section 3.
//
//   EarsShutdown    : sweep the shut-down constant C — too small risks
//                     premature sleep (gather_ok < 1), larger C buys
//                     safety margin with messages.
//   EarsProgressCtl : EARS with/without the informed-list progress control
//                     (the "fixed iteration budget" strawman from the
//                     paper's introduction) — message inflation.
//   SearsEpsilon    : the time/message trade-off dial of Section 4.
//   TearsConstants  : a/kappa multiplier sweep — majority success
//                     probability vs message cost (Lemmas 9-11 headroom).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "gossip/epidemic.h"

namespace asyncgossip::bench {

AG_BENCH_SUITE("ablation");

namespace {

constexpr int kIterations = 5;

void BM_EarsShutdownConstant(benchmark::State& state) {
  const double c = static_cast<double>(state.range(0)) / 10.0;
  GossipAccumulator acc;
  std::uint64_t seed = 31337;
  GossipSpec spec = base_spec(GossipAlgorithm::kEars, 128, 32, 2, 2);
  spec.ears_shutdown_constant = c;
  for (auto _ : state) {
    spec.seed = seed++;
    const GossipOutcome out = run_gossip_spec(spec);
    if (!out.completed) {
      state.SkipWithError("no quiescence");
      return;
    }
    acc.add(out);
  }
  acc.flush(state, 128.0, 4.0,
            "ears-shutdown-c/c:" + std::to_string(c));
}

void BM_EarsProgressControl(benchmark::State& state) {
  const bool with_informed_list = state.range(0) == 1;
  // The fixed budget is what a designer without the progress control would
  // have to provision: multiples of the informed-list shut-down length.
  const auto budget_multiplier = static_cast<std::uint64_t>(state.range(1));
  GossipAccumulator acc;
  std::uint64_t seed = 8191;
  for (auto _ : state) {
    GossipSpec spec = base_spec(with_informed_list
                                    ? GossipAlgorithm::kEars
                                    : GossipAlgorithm::kEarsNoInformedList,
                                128, 32, 2, 2);
    if (!with_informed_list) {
      const auto base = make_ears_config(spec.n, spec.f, 1).shutdown_steps;
      spec.fallback_step_budget = budget_multiplier * base;
    }
    spec.seed = seed++;
    const GossipOutcome out = run_gossip_spec(spec);
    if (!out.completed) {
      state.SkipWithError("no quiescence");
      return;
    }
    acc.add(out);
  }
  acc.flush(state, 128.0, 4.0,
            std::string("ears-progress-ctl/informed:") +
                (with_informed_list ? "1" : "0") +
                "/budget-mult:" + std::to_string(budget_multiplier));
}

void BM_SearsEpsilon(benchmark::State& state) {
  const double eps = static_cast<double>(state.range(0)) / 100.0;
  GossipAccumulator acc;
  std::uint64_t seed = 65537;
  GossipSpec spec = base_spec(GossipAlgorithm::kSears, 256, 64, 2, 2);
  spec.sears_epsilon = eps;
  for (auto _ : state) {
    spec.seed = seed++;
    const GossipOutcome out = run_gossip_spec(spec);
    if (!out.completed) {
      state.SkipWithError("no quiescence");
      return;
    }
    acc.add(out);
  }
  acc.flush(state, 256.0, 4.0, "sears-epsilon/eps:" + std::to_string(eps));
}

void BM_TearsConstants(benchmark::State& state) {
  const double mult = static_cast<double>(state.range(0)) / 10.0;
  GossipAccumulator acc;
  std::uint64_t seed = 131071;
  GossipSpec spec = base_spec(GossipAlgorithm::kTears, 1024, 511, 2, 2);
  spec.tears_a_constant = mult;
  spec.tears_kappa_constant = mult;
  for (auto _ : state) {
    spec.seed = seed++;
    const GossipOutcome out = run_gossip_spec(spec);
    if (!out.completed) {
      state.SkipWithError("no quiescence");
      return;
    }
    acc.add(out);
  }
  acc.flush(state, 1024.0, 4.0,
            "tears-constants/mult:" + std::to_string(mult));
}

void BM_RoundRobinVsEars(benchmark::State& state) {
  // Derandomization ablation (the paper's deterministic-gossip question):
  // cyclic targets vs uniform-random targets, same skeleton.
  const bool deterministic = state.range(0) == 1;
  GossipAccumulator acc;
  std::uint64_t seed = 24001;
  GossipSpec spec = base_spec(deterministic ? GossipAlgorithm::kRoundRobin
                                            : GossipAlgorithm::kEars,
                              128, 32, 2, 2);
  for (auto _ : state) {
    spec.seed = seed++;
    const GossipOutcome out = run_gossip_spec(spec);
    if (!out.completed) {
      state.SkipWithError("no quiescence");
      return;
    }
    acc.add(out);
  }
  acc.flush(state, 128.0, 4.0,
            deterministic ? "derandomized/round-robin" : "derandomized/ears");
}

// Shut-down constant C in tenths: 0.5, 1, 2, 4, 8.
BENCHMARK(BM_EarsShutdownConstant)
    ->Arg(5)->Arg(10)->Arg(20)->Arg(40)->Arg(80)
    ->Iterations(kIterations);

// {with_informed_list, budget_multiplier}.
BENCHMARK(BM_EarsProgressControl)
    ->Args({1, 0})
    ->Args({0, 4})->Args({0, 8})->Args({0, 16})
    ->Iterations(kIterations);

// Epsilon in hundredths: 0.2 .. 0.75.
BENCHMARK(BM_SearsEpsilon)
    ->Arg(20)->Arg(35)->Arg(50)->Arg(75)
    ->Iterations(kIterations);

// 0 = ears (random targets), 1 = round-robin (deterministic).
BENCHMARK(BM_RoundRobinVsEars)->Arg(0)->Arg(1)->Iterations(kIterations);

// a/kappa multiplier in tenths: 0.3, 0.5, 1, 2, 4.
BENCHMARK(BM_TearsConstants)
    ->Arg(3)->Arg(5)->Arg(10)->Arg(20)->Arg(40)
    ->Iterations(kIterations);

}  // namespace
}  // namespace asyncgossip::bench
