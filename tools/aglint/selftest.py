#!/usr/bin/env python3
"""aglint self-test: run the analyzer against tests/lint_fixtures/.

For every fixture, the file's `aglint-fixture-as:` directive gives the
pretend repo-relative path (rules are path-scoped) and its `aglint-expect:`
directives give the exact set of rule ids that must fire (or `none`). Each
fixture is copied alone into a temporary root and analyzed with the
production rule config, so this exercises aglint exactly as the repo run
does — no special fixture mode in the tool.

Also runs the tamper check: stripping the justification off the
suppression in good_suppressed.cpp must surface AG-SUP-001 *and* the
finding the suppression was hiding (a suppression cannot be hollowed out
silently).

Exit codes: 0 all fixtures behave, 1 mismatches, 2 harness error.
"""

import json
import os
import re
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import aglint  # noqa: E402

FIXTURE_AS = re.compile(r"aglint-fixture-as:\s*(\S+)")
EXPECT = re.compile(r"aglint-expect:\s*(\S+)")


def load_config(repo_root):
    path = os.path.join(repo_root, "tools", "aglint", "rules.json")
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def active_rules(config, pretend_path, text):
    """Analyze one fixture body at its pretend path in a fresh temp root;
    returns the sorted list of active (unsuppressed) rule ids."""
    with tempfile.TemporaryDirectory(prefix="aglint_fixture_") as root:
        dest = os.path.join(root, pretend_path)
        os.makedirs(os.path.dirname(dest), exist_ok=True)
        with open(dest, "w", encoding="utf-8") as fh:
            fh.write(text)
        findings, _ = aglint.run_analysis(root, config)
    return sorted({f["rule"] for f in findings if f["status"] == "active"})


def main():
    repo_root = os.path.abspath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))
    fixture_dir = os.path.join(repo_root, "tests", "lint_fixtures")
    if not os.path.isdir(fixture_dir):
        print(f"selftest: fixture dir {fixture_dir} missing", file=sys.stderr)
        return 2
    config = load_config(repo_root)

    failures = 0
    checked = 0
    suppressed_fixture = None  # (pretend_path, text) for the tamper check
    for name in sorted(os.listdir(fixture_dir)):
        if not name.endswith((".h", ".cpp", ".cc", ".hpp")):
            continue
        path = os.path.join(fixture_dir, name)
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        m = FIXTURE_AS.search(text)
        if not m:
            print(f"FAIL {name}: missing aglint-fixture-as directive")
            failures += 1
            continue
        pretend = m.group(1)
        expected = sorted({e for e in EXPECT.findall(text) if e != "none"})
        if name.startswith("bad_") and not expected:
            print(f"FAIL {name}: bad fixture declares no expected rules")
            failures += 1
            continue
        if name.startswith("good_") and expected:
            print(f"FAIL {name}: good fixture must expect none")
            failures += 1
            continue

        got = active_rules(config, pretend, text)
        checked += 1
        if got != expected:
            print(f"FAIL {name} (as {pretend}): expected {expected or 'none'}"
                  f", got {got or 'none'}")
            failures += 1
        else:
            print(f"ok   {name}: {', '.join(got) if got else 'clean'}")
        if name == "good_suppressed.cpp":
            suppressed_fixture = (pretend, text)

    # Tamper check: a justification-stripped suppression must not suppress.
    if suppressed_fixture is None:
        print("FAIL tamper-check: good_suppressed.cpp fixture missing")
        failures += 1
    else:
        pretend, text = suppressed_fixture
        tampered_lines = []
        stripped = False
        for line in text.split("\n"):
            m = re.search(r"^(.*aglint:allow\([^)]*\)).*$", line)
            if m and not stripped:
                tampered_lines.append(m.group(1))
                stripped = True
                continue
            # Drop the justification's continuation comment line too.
            if stripped and line.strip().startswith("//") \
                    and "aglint" not in line and tampered_lines \
                    and "aglint:allow" in tampered_lines[-1]:
                continue
            tampered_lines.append(line)
        if not stripped:
            print("FAIL tamper-check: no aglint:allow found to strip")
            failures += 1
        else:
            got = active_rules(config, pretend, "\n".join(tampered_lines))
            want = ["AG-DET-003", "AG-SUP-001"]
            if got == want:
                print("ok   tamper-check: stripped justification fires "
                      + ", ".join(want))
            else:
                print(f"FAIL tamper-check: expected {want}, got {got}")
                failures += 1
        checked += 1

    print(f"selftest: {checked} checks, {failures} failures")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
