// Always-on assertions for model invariants.
//
// The simulation engine enforces the paper's (d, delta) model contract at run
// time; violations indicate a bug in an adversary or in the engine itself and
// must never be silently ignored, so these checks are active in release
// builds too (they guard O(1) conditions on hot paths).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace asyncgossip {

/// Thrown when an execution violates the partially-synchronous model contract
/// (e.g. a message outlives its delivery bound d, or a live process is left
/// unscheduled for more than delta steps in strict mode).
class ModelViolation : public std::logic_error {
 public:
  explicit ModelViolation(const std::string& what) : std::logic_error(what) {}
};

/// Thrown on misuse of the library API (bad parameters, out-of-range ids).
class ApiError : public std::invalid_argument {
 public:
  explicit ApiError(const std::string& what) : std::invalid_argument(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "assertion failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ModelViolation(os.str());
}
}  // namespace detail

}  // namespace asyncgossip

#define AG_ASSERT(expr)                                                     \
  do {                                                                      \
    if (!(expr))                                                            \
      ::asyncgossip::detail::assert_fail(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define AG_ASSERT_MSG(expr, msg)                                            \
  do {                                                                      \
    if (!(expr))                                                            \
      ::asyncgossip::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
