// aglint-fixture-as: src/svc/fixture_svc.cpp
// aglint-expect: AG-LAY-001
// aglint-expect: AG-LCK-002
//
// The serving layer sits above rt/consensus but below apps/tools: a
// src/svc file including an apps header inverts the DAG (AG-LAY-001), and
// src/svc is threaded code (the KvService commit thread, the UDP server
// receive loop), so a raw std::mutex there escapes clang -Wthread-safety
// checking (AG-LCK-002).
#include <mutex>

#include "apps/telemetry.h"

namespace asyncgossip {

std::mutex svc_raw_mu;  // AG-LCK-002

int svc_layer_inversion() {
  const std::lock_guard<std::mutex> lock(svc_raw_mu);  // AG-LCK-002
  return 1;
}

}  // namespace asyncgossip
