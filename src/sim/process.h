// The process abstraction: an asynchronous, crash-prone state machine.
//
// A local step follows the paper's model exactly: the process (1) receives
// some subset of the messages sent to it (chosen by the adversary within the
// delivery bound d), (2) performs local computation, and (3) sends zero or
// more messages. Processes never see global time; they can only count their
// own local steps.
//
// Processes must be deep-copyable via clone(): the Theorem 1 adaptive
// adversary forks a process (state *and* RNG) to sample the distribution of
// its future sends without disturbing the real execution.
#pragma once

#include <memory>
#include <vector>

#include "sim/message.h"
#include "sim/probe.h"
#include "sim/types.h"

namespace asyncgossip {

/// Handed to a process for the duration of one local step.
class StepContext {
 public:
  struct Outgoing {
    ProcessId to;
    PayloadPtr payload;
  };

  StepContext(ProcessId self, std::size_t n, std::uint64_t local_step,
              const std::vector<Envelope>& received)
      : self_(self), n_(n), local_step_(local_step), received_(received),
        outbox_(&own_outbox_) {}

  /// Engine-side overload: sends go into `outbox`, a caller-owned buffer
  /// that must arrive empty and outlive the context. Lets the engine reuse
  /// one buffer across proc-steps instead of allocating per step.
  StepContext(ProcessId self, std::size_t n, std::uint64_t local_step,
              const std::vector<Envelope>& received,
              std::vector<Outgoing>& outbox)
      : self_(self), n_(n), local_step_(local_step), received_(received),
        outbox_(&outbox) {}

  StepContext(const StepContext&) = delete;
  StepContext& operator=(const StepContext&) = delete;

  ProcessId self() const { return self_; }
  std::size_t n() const { return n_; }

  /// How many local steps this process has taken before this one. This is
  /// the only "clock" a process may consult.
  std::uint64_t local_step() const { return local_step_; }

  /// Messages delivered at the start of this step.
  const std::vector<Envelope>& received() const { return received_; }

  /// Queues a point-to-point message; the engine takes ownership of the
  /// batch when the step ends. Sending to self is allowed and is counted.
  void send(ProcessId to, PayloadPtr payload) {
    outbox_->push_back(Outgoing{to, std::move(payload)});
  }

  /// Engine-side accessor; algorithm code has no reason to call this.
  std::vector<Outgoing>& outbox() { return *outbox_; }

  // --- instrumentation probes (sim/probe.h) -------------------------------
  // No-ops unless the engine attached a sink; probing never affects the
  // execution, so algorithms keep these calls in permanently. The global
  // time forwarded to the sink stays invisible to the process itself.

  /// Announces a phase transition (pass a static string literal).
  void probe_phase(const char* phase) {
    if (probe_ != nullptr) probe_->on_phase(probe_now_, self_, phase);
  }

  /// Reports |V(p)| and the number of fully-informed rumors (0 when the
  /// algorithm keeps no informed list).
  void probe_state(std::uint64_t rumors_known,
                   std::uint64_t rumors_fully_informed) {
    if (probe_ != nullptr)
      probe_->on_state(probe_now_, self_, rumors_known, rumors_fully_informed);
  }

  /// Engine-side wiring of the probe sink; algorithm code never calls this.
  void attach_probe(ProbeSink* sink, Time now) {
    probe_ = sink;
    probe_now_ = now;
  }

 private:
  ProcessId self_;
  std::size_t n_;
  std::uint64_t local_step_;
  const std::vector<Envelope>& received_;
  std::vector<Outgoing> own_outbox_;
  std::vector<Outgoing>* outbox_;
  ProbeSink* probe_ = nullptr;
  Time probe_now_ = 0;
};

class Process {
 public:
  virtual ~Process() = default;

  /// Executes one local step (receive / compute / send).
  virtual void step(StepContext& ctx) = 0;

  /// Deep copy, including RNG state: the clone's future behaviour under the
  /// same deliveries is identical in distribution *and* realization.
  virtual std::unique_ptr<Process> clone() const = 0;

  /// Replaces the process's random stream with a fresh one derived from
  /// `seed`, leaving all other state intact. The adaptive adversary of
  /// Theorem 1 clones a process and reseeds each clone to Monte-Carlo
  /// sample the *distribution* of the process's future sends — exactly the
  /// quantity the proof's promiscuity test is defined over (the adversary
  /// may know the algorithm and its state, but not its future coin flips).
  virtual void reseed(std::uint64_t seed) = 0;
};

}  // namespace asyncgossip
