#include "sim/sweep.h"

#include <atomic>
#include <exception>
#include <thread>
#include <vector>

namespace asyncgossip {

SweepRunner::SweepRunner(std::size_t jobs) : jobs_(jobs) {
  if (jobs_ == 0) {
    jobs_ = std::thread::hardware_concurrency();
    if (jobs_ == 0) jobs_ = 1;
  }
}

void SweepRunner::run(std::size_t count,
                      const std::function<void(std::size_t)>& fn) const {
  std::vector<std::exception_ptr> errors;
  run_collecting(count, fn, errors);
  for (std::size_t i = 0; i < count; ++i)
    if (errors[i] != nullptr) std::rethrow_exception(errors[i]);
}

std::size_t SweepRunner::run_collecting(
    std::size_t count, const std::function<void(std::size_t)>& fn,
    std::vector<std::exception_ptr>& errors) const {
  errors.assign(count, nullptr);
  if (count == 0) return 0;

  if (jobs_ <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) {
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  } else {
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          fn(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    };
    std::vector<std::thread> pool;
    const std::size_t workers = jobs_ < count ? jobs_ : count;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  std::size_t failed = 0;
  for (const std::exception_ptr& e : errors)
    if (e != nullptr) ++failed;
  return failed;
}

}  // namespace asyncgossip
