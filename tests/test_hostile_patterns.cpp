// Failure-injection and hostile-schedule integration tests: the algorithms
// must keep their contracts under the nastiest oblivious patterns the
// adversary family can produce — simultaneous crash bursts, straggler
// schedules, and targeted slow links.
#include <gtest/gtest.h>

#include "consensus/canetti_rabin.h"
#include "gossip/completion.h"
#include "gossip/harness.h"

namespace asyncgossip {
namespace {

Engine engine_with(GossipSpec spec, CrashPlan plan, DelayPattern delay,
                   SchedulePattern schedule) {
  ObliviousConfig adv;
  adv.n = spec.n;
  adv.d = spec.d;
  adv.delta = spec.delta;
  adv.schedule = schedule;
  adv.delay = delay;
  adv.crash_plan = std::move(plan);
  adv.seed = spec.seed ^ 0xA05711EULL;
  EngineConfig ecfg;
  ecfg.d = spec.d;
  ecfg.delta = spec.delta;
  ecfg.max_crashes = spec.f;
  return Engine(make_gossip_processes(spec),
                std::make_unique<ObliviousAdversary>(adv), ecfg);
}

GossipSpec hostile_spec(GossipAlgorithm alg, std::uint64_t seed) {
  GossipSpec spec;
  spec.algorithm = alg;
  spec.n = 64;
  spec.f = 24;
  spec.d = 6;
  spec.delta = 4;
  spec.seed = seed;
  return spec;
}

class BurstCrash : public ::testing::TestWithParam<GossipAlgorithm> {};

TEST_P(BurstCrash, GossipSurvivesSimultaneousFailures) {
  // All f processes die at once, mid-dissemination.
  GossipSpec spec = hostile_spec(GetParam(), 31);
  Engine engine =
      engine_with(spec, burst_crashes(spec.n, spec.f, /*when=*/12, 5),
                  DelayPattern::kUniform, SchedulePattern::kStaggered);
  const GossipOutcome out = run_gossip(engine, default_step_budget(spec) * 2);
  ASSERT_TRUE(out.completed);
  if (GetParam() == GossipAlgorithm::kTears) {
    EXPECT_TRUE(out.majority_ok);
  } else {
    EXPECT_TRUE(out.gathering_ok);
  }
  EXPECT_EQ(out.crashes, spec.f);
}

INSTANTIATE_TEST_SUITE_P(Algos, BurstCrash,
                         ::testing::Values(GossipAlgorithm::kEars,
                                           GossipAlgorithm::kSears,
                                           GossipAlgorithm::kTears,
                                           GossipAlgorithm::kTrivial,
                                           GossipAlgorithm::kRoundRobin));

class HostileTiming : public ::testing::TestWithParam<GossipAlgorithm> {};

TEST_P(HostileTiming, StragglersAndSlowLinks) {
  // The last n/8 processes run at 1/delta speed AND their inbound links
  // carry the full delay d: the worst legal corner for stopping rules.
  GossipSpec spec = hostile_spec(GetParam(), 47);
  Engine engine = engine_with(spec, no_crashes(),
                              DelayPattern::kTargetedSlow,
                              SchedulePattern::kStraggler);
  const GossipOutcome out = run_gossip(engine, default_step_budget(spec) * 2);
  ASSERT_TRUE(out.completed);
  if (GetParam() == GossipAlgorithm::kTears) {
    EXPECT_TRUE(out.majority_ok);
  } else {
    EXPECT_TRUE(out.gathering_ok)
        << "stragglers must still receive and contribute every rumor";
  }
  EXPECT_LE(out.realized_d, spec.d);
  EXPECT_LE(out.realized_delta, spec.delta);
}

INSTANTIATE_TEST_SUITE_P(Algos, HostileTiming,
                         ::testing::Values(GossipAlgorithm::kEars,
                                           GossipAlgorithm::kSears,
                                           GossipAlgorithm::kTears,
                                           GossipAlgorithm::kRoundRobin));

TEST(HostileConsensus, BurstCrashMidProtocol) {
  for (ExchangeKind kind :
       {ExchangeKind::kAllToAll, ExchangeKind::kEars, ExchangeKind::kTears}) {
    ConsensusSpec spec;
    spec.config.n = 48;
    spec.config.f = 23;
    spec.config.exchange = kind;
    spec.inputs = InputPattern::kHalfHalf;
    spec.d = 3;
    spec.delta = 2;
    spec.schedule = SchedulePattern::kStaggered;
    spec.crash_horizon = 1;  // every victim dies in the very first steps
    spec.seed = 13;
    const ConsensusOutcome out = run_consensus_spec(spec);
    ASSERT_TRUE(out.all_decided) << to_string(kind);
    EXPECT_TRUE(out.agreement) << to_string(kind);
    EXPECT_TRUE(out.validity) << to_string(kind);
  }
}

TEST(HostileConsensus, StragglerScheduleStillDecides) {
  ConsensusSpec spec;
  spec.config.n = 48;
  spec.config.f = 11;
  spec.config.exchange = ExchangeKind::kSears;
  spec.inputs = InputPattern::kRandom;
  spec.d = 4;
  spec.delta = 6;
  spec.schedule = SchedulePattern::kStraggler;
  spec.delay = DelayPattern::kTargetedSlow;
  spec.seed = 29;
  const ConsensusOutcome out = run_consensus_spec(spec);
  ASSERT_TRUE(out.all_decided);
  EXPECT_TRUE(out.agreement);
  EXPECT_TRUE(out.validity);
}

TEST(HostileGossip, MaxDelayEverywhere) {
  // Every message takes the full d: the slowest legal network.
  GossipSpec spec = hostile_spec(GossipAlgorithm::kEars, 53);
  Engine engine = engine_with(spec, no_crashes(), DelayPattern::kMaxDelay,
                              SchedulePattern::kLockStep);
  const GossipOutcome out = run_gossip(engine, default_step_budget(spec) * 2);
  ASSERT_TRUE(out.completed);
  EXPECT_TRUE(out.gathering_ok);
  EXPECT_EQ(out.realized_d, spec.d);
}

}  // namespace
}  // namespace asyncgossip
