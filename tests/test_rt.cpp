// Tests for the real-time threaded runtime (src/rt/). The load-bearing
// properties: every algorithm reaches its contractual postcondition over
// the genuinely concurrent transport, with and without injected faults;
// the recorded event log is a conforming trace under the run's *realized*
// bounds (same InvariantAuditor tools/tracecheck applies); telemetry
// replayed from the record agrees with the outcome counters; and a seed
// pins the fault plan and the outcome verdicts, though never the
// interleaving. These tests are the reason the tsan preset exists — run
// them under ThreadSanitizer via `ctest --preset tsan -R Rt`.
#include "rt/driver.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "rt/fault.h"
#include "sim/fuzz.h"
#include "sim/telemetry.h"
#include "sim/trace.h"

namespace asyncgossip {
namespace {

/// Nightly CI rotates the base seed via AG_RT_SEED (like fuzz-nightly), so
/// coverage accumulates across scheduling environments.
std::uint64_t base_seed() {
  const char* env = std::getenv("AG_RT_SEED");
  if (env == nullptr || *env == '\0') return 1;
  const std::uint64_t seed = std::strtoull(env, nullptr, 10);
  return seed != 0 ? seed : 1;
}

const std::vector<GossipAlgorithm>& all_algorithms() {
  static const std::vector<GossipAlgorithm> algorithms = {
      GossipAlgorithm::kTrivial,
      GossipAlgorithm::kEars,
      GossipAlgorithm::kSears,
      GossipAlgorithm::kTears,
      GossipAlgorithm::kSync,
      GossipAlgorithm::kEarsNoInformedList,
      GossipAlgorithm::kLazy,
      GossipAlgorithm::kRoundRobin,
  };
  return algorithms;
}

RtConfig small_config(GossipAlgorithm algorithm, RtInject inject) {
  RtConfig config;
  config.spec.algorithm = algorithm;
  config.spec.n = 12;
  // f < n/2 keeps the tears majority contract satisfiable; the others
  // tolerate any f < n, so one value covers all eight.
  config.spec.f = 3;
  config.spec.d = 3;
  config.spec.delta = 2;
  config.spec.seed = base_seed();
  config.spec.crash_horizon = 32;
  config.inject = inject;
  config.tick_us = 100;
  return config;
}

/// The contractual postcondition for a finished rt run, evaluated against
/// the bounds the execution realized (the sync baseline's spread guarantee
/// only binds at d = delta = 1, which wall-clock runs do not realize).
void expect_contract(const RtConfig& config, const RtRunResult& res) {
  const char* name = to_string(config.spec.algorithm);
  EXPECT_TRUE(res.outcome.completed) << name;
  EXPECT_EQ(res.events_dropped, 0u) << name;
  GossipSpec realized = config.spec;
  realized.d = res.outcome.realized_d;
  realized.delta = res.outcome.realized_delta;
  if (gossip_requires_gathering(realized)) {
    EXPECT_TRUE(res.outcome.gathering_ok) << name;
  }
  if (gossip_requires_majority(realized)) {
    EXPECT_TRUE(res.outcome.majority_ok) << name;
  }
  const ViolationReport audit = audit_rt_run(config, res);
  EXPECT_TRUE(audit.ok()) << name << "\n" << audit.summary();
}

TEST(RtDriver, AllAlgorithmsReachContractWithoutFaults) {
  for (GossipAlgorithm algorithm : all_algorithms()) {
    const RtConfig config = small_config(algorithm, RtInject::kNone);
    const RtRunResult res = run_realtime(config);
    expect_contract(config, res);
    EXPECT_EQ(res.outcome.crashes, 0u) << to_string(algorithm);
    EXPECT_EQ(res.outcome.alive, config.spec.n) << to_string(algorithm);
  }
}

TEST(RtDriver, AllAlgorithmsReachContractWithInjectedCrashes) {
  for (GossipAlgorithm algorithm : all_algorithms()) {
    const RtConfig config = small_config(algorithm, RtInject::kCrash);
    const RtRunResult res = run_realtime(config);
    expect_contract(config, res);
    EXPECT_LE(res.outcome.crashes, config.spec.f) << to_string(algorithm);
  }
}

TEST(RtDriver, StallAndDropInjectionStaysWithinRealizedBounds) {
  const RtConfig config = small_config(GossipAlgorithm::kEars, RtInject::kAll);
  const RtRunResult res = run_realtime(config);
  expect_contract(config, res);
  // Delay spikes are only ever *delays*: the realized d must cover every
  // stamp, which the audit above already enforced — spot-check directly.
  for (const TraceRecorder::Event& e : res.events) {
    if (e.kind != TraceRecorder::EventKind::kSend) continue;
    ASSERT_GE(e.deliver_after, e.time + 1);
    ASSERT_LE(e.deliver_after - e.time, res.outcome.realized_d);
  }
}

TEST(RtDriver, RecordedTraceRoundTripsThroughTextFormat) {
  const RtConfig config = small_config(GossipAlgorithm::kEars, RtInject::kCrash);
  const RtRunResult res = run_realtime(config);
  ASSERT_EQ(res.events_dropped, 0u);

  std::ostringstream os;
  write_rt_trace(os, config, res);
  std::istringstream is(os.str());

  // Re-parse every line exactly like tools/tracecheck does and audit the
  // parsed stream: the artifact alone must re-certify the execution.
  std::vector<TraceRecorder::Event> parsed;
  std::string line;
  while (std::getline(is, line)) {
    TraceRecorder::Event event;
    const auto result = TraceRecorder::parse_line(line, &event);
    ASSERT_NE(result, TraceRecorder::ParseResult::kError) << line;
    if (result == TraceRecorder::ParseResult::kEvent) parsed.push_back(event);
  }
  ASSERT_EQ(parsed.size(), res.events.size());

  AuditConfig ac;
  ac.n = config.spec.n;
  ac.d = res.outcome.realized_d;
  ac.delta = res.outcome.realized_delta;
  ac.max_crashes = config.spec.f;
  const ViolationReport report = audit_events(parsed, ac);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(RtDriver, OutcomeVerdictsAreDeterministicPerSeed) {
  // The interleaving is the OS's; the *verdicts* (completion, contract
  // checks, audit cleanliness) and the fault plan must be seed-stable.
  const RtConfig config = small_config(GossipAlgorithm::kEars, RtInject::kCrash);
  const RtRunResult a = run_realtime(config);
  const RtRunResult b = run_realtime(config);
  EXPECT_EQ(a.outcome.completed, b.outcome.completed);
  EXPECT_EQ(a.outcome.gathering_ok, b.outcome.gathering_ok);
  EXPECT_EQ(a.outcome.majority_ok, b.outcome.majority_ok);
  EXPECT_TRUE(audit_rt_run(config, a).ok());
  EXPECT_TRUE(audit_rt_run(config, b).ok());
}

TEST(RtDriver, MergedSendIdsAreDenseAndMonotone) {
  // The merge renumbers message ids in merged send order through a flat
  // vector indexed by the raw atomic-counter id (no hash map on the merge
  // path — docs/ANALYSIS.md, AG-DET-003). The contract the auditor relies
  // on: send ids are exactly 0, 1, 2, ... in event order, and every
  // delivery refers to an already-seen send.
  const RtConfig config = small_config(GossipAlgorithm::kEars, RtInject::kCrash);
  const RtRunResult res = run_realtime(config);
  ASSERT_EQ(res.events_dropped, 0u);
  MessageId next_send_id = 0;
  for (const TraceRecorder::Event& e : res.events) {
    if (e.kind == TraceRecorder::EventKind::kSend) {
      ASSERT_EQ(e.message, next_send_id);
      ++next_send_id;
    } else if (e.kind == TraceRecorder::EventKind::kDelivery) {
      ASSERT_LT(e.message, next_send_id);
    }
  }
  EXPECT_EQ(next_send_id, res.outcome.messages);
}

TEST(RtDriver, PostJoinAccountingMatchesTheMergedTrace) {
  // Crash/alive accounting is computed from one snapshot of SharedState
  // copied under its mutex after every worker joined (the AG_GUARDED_BY
  // invariant on SharedState holds through teardown, not just while the
  // threads run). That snapshot must agree exactly with the crash events
  // the workers logged — counting both and comparing pins the invariant.
  const RtConfig config =
      small_config(GossipAlgorithm::kTears, RtInject::kCrash);
  const RtRunResult res = run_realtime(config);
  ASSERT_TRUE(res.outcome.completed);
  std::size_t crash_events = 0;
  for (const TraceRecorder::Event& e : res.events)
    if (e.kind == TraceRecorder::EventKind::kCrash) ++crash_events;
  EXPECT_EQ(res.outcome.crashes, crash_events);
  EXPECT_EQ(res.outcome.alive, config.spec.n - crash_events);
  EXPECT_LE(res.outcome.crashes, config.spec.f);
}

TEST(RtDriver, TelemetryReplayAgreesWithOutcome) {
  const RtConfig config = small_config(GossipAlgorithm::kEars, RtInject::kNone);
  const RtRunResult res = run_realtime(config);
  ASSERT_TRUE(res.outcome.completed);

  TelemetryCollector telemetry(rt_telemetry_config(config, res));
  feed_telemetry(res, &telemetry);
  EXPECT_TRUE(telemetry.finalized());
  EXPECT_EQ(telemetry.steps_total(), res.outcome.steps);
  EXPECT_EQ(telemetry.sends_total(), res.outcome.messages);
  EXPECT_EQ(telemetry.deliveries_total(), res.outcome.deliveries);
  EXPECT_EQ(telemetry.crashes_total(), res.outcome.crashes);
  EXPECT_EQ(telemetry.end_time(), res.outcome.end_time);
  // The histogram is sized for the realized bounds, so a conforming record
  // cannot overflow it.
  EXPECT_EQ(telemetry.latency_overflow(), 0u);
  EXPECT_FALSE(telemetry.spread().empty());
  EXPECT_FALSE(telemetry.phases().empty());  // ears announces its phases
  EXPECT_GT(telemetry.informed_fraction(), 0.99);
}

// The transport unit tests that used to live here moved to
// tests/test_transport_conformance.cpp, which runs them — plus the rest of
// the Transport contract — against both backends.

// --- fault plan unit tests ------------------------------------------------

TEST(RtFaultPlan, CrashPlanIsSeededAndExact) {
  const FaultPlan plan = make_fault_plan(RtInject::kCrash, 16, 5, 32, 7);
  std::size_t victims = 0;
  for (Time at : plan.crash_at_step) {
    if (at == kTimeMax) continue;
    ++victims;
    EXPECT_GE(at, 1u);  // every victim completes its first step
    EXPECT_LE(at, 32u);
  }
  EXPECT_EQ(victims, 5u);
  const FaultPlan again = make_fault_plan(RtInject::kCrash, 16, 5, 32, 7);
  EXPECT_EQ(plan.crash_at_step, again.crash_at_step);
  const FaultPlan other = make_fault_plan(RtInject::kCrash, 16, 5, 32, 8);
  EXPECT_NE(plan.crash_at_step, other.crash_at_step);
}

TEST(RtFaultPlan, NoneAndStallPlansCrashNobody) {
  for (RtInject inject : {RtInject::kNone, RtInject::kStall, RtInject::kDrop}) {
    const FaultPlan plan = make_fault_plan(inject, 8, 3, 32, 1);
    for (Time at : plan.crash_at_step) EXPECT_EQ(at, kTimeMax);
  }
  EXPECT_TRUE(make_fault_plan(RtInject::kStall, 8, 3, 32, 1).stall_links);
  EXPECT_TRUE(make_fault_plan(RtInject::kDrop, 8, 3, 32, 1).drop_retry);
  const FaultPlan all = make_fault_plan(RtInject::kAll, 8, 3, 32, 1);
  EXPECT_TRUE(all.stall_links);
  EXPECT_TRUE(all.drop_retry);
}

TEST(RtFaultPlan, InjectNamesRoundTrip) {
  for (RtInject inject : {RtInject::kNone, RtInject::kCrash, RtInject::kStall,
                          RtInject::kDrop, RtInject::kAll}) {
    RtInject parsed;
    ASSERT_TRUE(rt_inject_from_string(to_string(inject), &parsed));
    EXPECT_EQ(parsed, inject);
  }
  RtInject unused;
  EXPECT_FALSE(rt_inject_from_string("bogus", &unused));
}

}  // namespace
}  // namespace asyncgossip
