// ShardPool: the engine's persistent worker pool for sharded intra-run
// stepping.
//
// One simulated step at large n has thousands of due process-steps that
// are independent given the frozen pre-step snapshot (sim/engine.cpp
// documents the argument), so the engine partitions the step's schedule
// across these workers. The pool is persistent because it is invoked once
// per simulated step: spawning threads per step (what SweepRunner does per
// *run*, which is fine at its granularity) would dominate small steps and
// melt under TSan's per-thread bookkeeping in the jobs-invariance tests.
//
// Determinism contract: run(count, task) promises only that task(i) is
// invoked exactly once for every i < count, on some thread, before run
// returns. Which thread runs which index is scheduling-dependent — callers
// needing deterministic output (the engine does) must write results into
// per-index buffers and sequence any side effects themselves afterwards.
//
// Locking: batch hand-off and completion use the annotated Mutex/CondVar
// (common/thread_annotations.h) under clang -Werror=thread-safety; index
// claiming and completion counting are atomics so the per-chunk cost stays
// off the mutex. Exceptions thrown by tasks are captured and the
// lowest-index one is rethrown from run() after the batch drains, so
// failures are reproducible regardless of interleaving.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <thread>
#include <vector>

#include "common/function_ref.h"
#include "common/thread_annotations.h"

namespace asyncgossip {

class ShardPool {
 public:
  /// Spawns `workers` persistent worker threads (>= 1; the calling thread
  /// participates in every batch on top of these).
  explicit ShardPool(std::size_t workers);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  std::size_t workers() const { return threads_.size(); }

  /// Runs task(i) for every i in [0, count) across the workers plus the
  /// calling thread; returns once all invocations completed and every
  /// worker has left the batch. Rethrows the lowest-index task exception,
  /// if any (the remaining tasks still run).
  void run(std::size_t count, FunctionRef<void(std::size_t)> task);

 private:
  void worker_main();
  /// Claims index chunks and runs them; returns the number of tasks this
  /// thread completed.
  std::size_t drain(const FunctionRef<void(std::size_t)>& task,
                    std::size_t count);
  void record_error(std::size_t index);

  Mutex mu_;
  CondVar work_cv_;  // workers: a new generation was published, or shutdown
  CondVar done_cv_;  // run(): tasks finished / workers left the batch

  // Batch state, published under mu_ per generation.
  std::uint64_t generation_ AG_GUARDED_BY(mu_) = 0;
  std::size_t count_ AG_GUARDED_BY(mu_) = 0;
  const FunctionRef<void(std::size_t)>* task_ AG_GUARDED_BY(mu_) = nullptr;
  /// Workers currently inside the batch: run() must not return while any
  /// worker still holds the (stack-lifetime) task reference.
  std::size_t active_ AG_GUARDED_BY(mu_) = 0;
  bool shutdown_ AG_GUARDED_BY(mu_) = false;
  std::exception_ptr error_ AG_GUARDED_BY(mu_);
  std::size_t error_index_ AG_GUARDED_BY(mu_) = 0;

  // Off-mutex fast path: next index to claim, completed task count.
  std::atomic<std::size_t> next_{0};
  std::atomic<std::size_t> done_{0};

  std::vector<std::thread> threads_;
};

}  // namespace asyncgossip
