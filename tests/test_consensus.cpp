#include "consensus/canetti_rabin.h"

#include <gtest/gtest.h>

#include <tuple>

namespace asyncgossip {
namespace {

struct ConsCase {
  ExchangeKind kind;
  InputPattern inputs;
  std::size_t n;
  std::size_t f;
  Time d;
  Time delta;
  SchedulePattern schedule;
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<ConsCase>& info) {
  const ConsCase& c = info.param;
  std::string name = to_string(c.kind);
  for (char& ch : name)
    if (ch == '-') ch = '_';
  name += "_in" + std::to_string(static_cast<int>(c.inputs)) + "_n" +
          std::to_string(c.n) + "_f" + std::to_string(c.f) + "_d" +
          std::to_string(c.d) + "_del" + std::to_string(c.delta) + "_s" +
          std::to_string(c.seed);
  return name;
}

class ConsensusSweep : public ::testing::TestWithParam<ConsCase> {};

TEST_P(ConsensusSweep, AgreementValidityTermination) {
  const ConsCase& c = GetParam();
  ConsensusSpec spec;
  spec.config.n = c.n;
  spec.config.f = c.f;
  spec.config.exchange = c.kind;
  spec.d = c.d;
  spec.delta = c.delta;
  spec.schedule = c.schedule;
  spec.delay = c.d == 1 ? DelayPattern::kUnitDelay : DelayPattern::kUniform;
  spec.inputs = c.inputs;
  spec.seed = c.seed;

  const ConsensusOutcome out = run_consensus_spec(spec);
  ASSERT_TRUE(out.all_decided) << "termination failed";
  EXPECT_TRUE(out.agreement);
  EXPECT_TRUE(out.validity);
  EXPECT_EQ(out.core_violations, 0u);
  if (c.inputs == InputPattern::kAllZero) {
    EXPECT_EQ(out.decided_value, 0);
  }
  if (c.inputs == InputPattern::kAllOne) {
    EXPECT_EQ(out.decided_value, 1);
  }
  // Unanimous inputs must decide in the very first phase.
  if (c.inputs == InputPattern::kAllZero || c.inputs == InputPattern::kAllOne) {
    EXPECT_EQ(out.decision_phase, 1u);
  }
}

std::vector<ConsCase> make_cases() {
  std::vector<ConsCase> cases;
  const ExchangeKind kinds[] = {ExchangeKind::kAllToAll, ExchangeKind::kEars,
                                ExchangeKind::kSears, ExchangeKind::kTears};
  const InputPattern inputs[] = {InputPattern::kAllZero, InputPattern::kAllOne,
                                 InputPattern::kHalfHalf,
                                 InputPattern::kRandom};
  for (ExchangeKind k : kinds) {
    for (InputPattern in : inputs) {
      cases.push_back(ConsCase{k, in, 32, 7, 1, 1,
                               SchedulePattern::kLockStep, 4242});
      cases.push_back(ConsCase{k, in, 48, 23, 3, 2,
                               SchedulePattern::kStaggered, 1717});
    }
    // One larger instance per kind.
    cases.push_back(ConsCase{k, InputPattern::kRandom, 96, 40, 2, 3,
                             SchedulePattern::kRotating, 99});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConsensusSweep,
                         ::testing::ValuesIn(make_cases()), case_name);

// Expected-constant phases: over seeds, the decision phase should stay
// small (the common coin succeeds with constant probability per phase).
TEST(Consensus, PhasesStaySmallAcrossSeeds) {
  std::uint32_t worst = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ConsensusSpec spec;
    spec.config.n = 32;
    spec.config.f = 7;
    spec.config.exchange = ExchangeKind::kEars;
    spec.inputs = InputPattern::kHalfHalf;
    spec.d = 2;
    spec.delta = 2;
    spec.schedule = SchedulePattern::kStaggered;
    spec.seed = seed;
    const ConsensusOutcome out = run_consensus_spec(spec);
    ASSERT_TRUE(out.all_decided);
    worst = std::max(worst, out.decision_phase);
  }
  EXPECT_LE(worst, 12u);
}

TEST(Consensus, QuiescenceReached) {
  ConsensusSpec spec;
  spec.config.n = 32;
  spec.config.f = 7;
  spec.config.exchange = ExchangeKind::kEars;
  spec.inputs = InputPattern::kRandom;
  spec.seed = 5;
  Engine engine = make_consensus_engine(spec);
  ASSERT_TRUE(engine.run_until(consensus_quiet, 200000));
  EXPECT_TRUE(consensus_all_decided(engine));
  EXPECT_TRUE(engine.network_empty());
}

TEST(Consensus, RejectsMajorityFailures) {
  ConsensusConfig cfg;
  cfg.n = 10;
  cfg.f = 5;  // not < n/2
  EXPECT_THROW(ConsensusProcess(0, 0, cfg), ModelViolation);
}

TEST(Consensus, RejectsNonBinaryInput) {
  ConsensusConfig cfg;
  cfg.n = 10;
  cfg.f = 4;
  EXPECT_THROW(ConsensusProcess(0, 2, cfg), ModelViolation);
  EXPECT_THROW(ConsensusProcess(0, kValBot, cfg), ModelViolation);
}

TEST(Consensus, CloneAndReseed) {
  ConsensusConfig cfg;
  cfg.n = 16;
  cfg.f = 7;
  cfg.exchange = ExchangeKind::kEars;
  cfg.seed = 8;
  ConsensusProcess p(0, 1, cfg);
  auto clone = p.clone();
  ASSERT_NE(clone, nullptr);
  clone->reseed(123);  // must not throw
  const auto& cp = dynamic_cast<const ConsensusProcess&>(*clone);
  EXPECT_EQ(cp.input(), 1);
  EXPECT_FALSE(cp.decided());
}

TEST(Consensus, DeterministicOutcomePerSpec) {
  ConsensusSpec spec;
  spec.config.n = 48;
  spec.config.f = 11;
  spec.config.exchange = ExchangeKind::kTears;
  spec.inputs = InputPattern::kRandom;
  spec.d = 2;
  spec.delta = 2;
  spec.schedule = SchedulePattern::kStaggered;
  spec.seed = 31;
  const ConsensusOutcome a = run_consensus_spec(spec);
  const ConsensusOutcome b = run_consensus_spec(spec);
  EXPECT_EQ(a.decided_value, b.decided_value);
  EXPECT_EQ(a.decision_time, b.decision_time);
  EXPECT_EQ(a.total_messages, b.total_messages);
}

// Message-complexity ordering at fixed n (Table 2): the gossip-backed
// variants must beat the all-to-all baseline once n is large enough for
// n log^3 n < n^2 to bite.
TEST(Consensus, EarsBeatsAllToAllOnMessages) {
  ConsensusSpec base;
  base.config.n = 96;
  base.config.f = 20;
  base.d = 2;
  base.delta = 2;
  base.schedule = SchedulePattern::kStaggered;
  base.inputs = InputPattern::kHalfHalf;
  base.seed = 77;

  ConsensusSpec cr = base, ears = base;
  cr.config.exchange = ExchangeKind::kAllToAll;
  ears.config.exchange = ExchangeKind::kEars;
  const ConsensusOutcome ocr = run_consensus_spec(cr);
  const ConsensusOutcome oears = run_consensus_spec(ears);
  ASSERT_TRUE(ocr.all_decided && oears.all_decided);
  EXPECT_LT(oears.total_messages, ocr.total_messages);
}

// The common coin: both outcomes must occur with constant probability.
TEST(Consensus, CoinProducesBothOutcomesAcrossSeeds) {
  int zeros = 0, ones = 0;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    ConsensusSpec spec;
    spec.config.n = 16;
    spec.config.f = 3;
    spec.config.exchange = ExchangeKind::kAllToAll;
    spec.inputs = InputPattern::kHalfHalf;
    spec.seed = seed;
    const ConsensusOutcome out = run_consensus_spec(spec);
    ASSERT_TRUE(out.all_decided);
    (out.decided_value == 0 ? zeros : ones)++;
  }
  EXPECT_GT(zeros, 0);
  EXPECT_GT(ones, 0);
}

}  // namespace
}  // namespace asyncgossip
