#include "gossip/pushpull.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace asyncgossip {

PushPullProcess::PushPullProcess(ProcessId id, PushPullConfig config)
    : id_(id),
      config_(config),
      rng_(config.seed ^ (0x9055B011ULL + id)),
      rumors_(config.n),
      informed_(id == config.initiator) {
  AG_ASSERT_MSG(config_.n >= 2 && id < config_.n, "bad process id / n");
  AG_ASSERT_MSG(config_.initiator < config_.n, "bad initiator");
  rumors_.set(id_);
  if (informed_) rumors_.set(config_.initiator);
  const double lg = std::log2(static_cast<double>(std::max<std::size_t>(config_.n, 4)));
  const double lglg = std::log2(std::max(lg, 2.0));
  counter_cap_ =
      static_cast<std::uint64_t>(std::ceil(config_.counter_constant * lglg)) + 1;
  round_cap_ =
      static_cast<std::uint64_t>(std::ceil(config_.round_constant * lg)) + 1;
}

bool PushPullProcess::quiescent() const {
  if (steps_taken_ == 0) return false;
  return steps_taken_ >= round_cap_ || (informed_ && counter_ >= counter_cap_);
}

void PushPullProcess::step(StepContext& ctx) {
  // Receive: learn the rumor from pushes/replies; answer pull requests if
  // informed. Meeting an informed peer bumps the stopping counter.
  std::vector<ProcessId> pull_requests;
  bool met_informed = false;
  for (const Envelope& env : ctx.received()) {
    const auto* m = payload_cast<PushPullPayload>(env);
    if (m == nullptr) continue;
    if (m->informed) {
      if (!informed_) {
        informed_ = true;
        rumors_.set(config_.initiator);
      } else {
        met_informed = true;
      }
    } else if (informed_) {
      pull_requests.push_back(env.from);
    }
  }
  if (met_informed) ++counter_;

  const bool active =
      steps_taken_ < round_cap_ && !(informed_ && counter_ >= counter_cap_);
  if (active) {
    auto contact = std::make_shared<PushPullPayload>();
    contact->informed = informed_;
    ctx.send(static_cast<ProcessId>(rng_.uniform(config_.n)), contact);
    if (informed_) ++transmissions_;
  }
  // Pull replies are always answered (they cost one message each and die
  // out as soon as everyone is informed).
  if (!pull_requests.empty()) {
    auto reply = std::make_shared<PushPullPayload>();
    reply->informed = true;
    for (ProcessId q : pull_requests) ctx.send(q, reply);
    transmissions_ += pull_requests.size();
  }

  ++steps_taken_;
}

std::unique_ptr<Process> PushPullProcess::clone() const {
  return std::make_unique<PushPullProcess>(*this);
}

}  // namespace asyncgossip
