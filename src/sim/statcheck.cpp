#include "sim/statcheck.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>
#include <sstream>

#include "common/assert.h"
#include "sim/telemetry_export.h"  // json_escape

namespace asyncgossip {

namespace {

// Same JSON-safe numeric rendering as the telemetry exporter.
std::string num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

}  // namespace

double sample_quantile(std::vector<double> sample, double q) {
  if (sample.empty()) throw ApiError("sample_quantile: empty sample");
  if (!(q > 0.0) || q > 1.0)
    throw ApiError("sample_quantile: quantile must be in (0, 1]");
  std::sort(sample.begin(), sample.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sample.size())));
  return sample[std::max<std::size_t>(rank, 1) - 1];
}

StatReport check_bounds(const std::vector<StatCell>& cells,
                        const StatCheckConfig& config) {
  if (!(config.slack > 0.0)) throw ApiError("statcheck: slack must be > 0");

  StatReport report;
  report.quantile = config.quantile;
  report.slack = config.slack;
  report.cells.reserve(cells.size());

  // Pass 1: per-cell quantiles and ratios.
  for (const StatCell& cell : cells) {
    if (!(cell.envelope > 0.0))
      throw ApiError("statcheck: cell '" + cell.label +
                     "' has a non-positive envelope");
    StatCellVerdict v;
    v.group = cell.group;
    v.label = cell.label;
    v.metric = cell.metric;
    v.trials = cell.samples.size();
    v.envelope = cell.envelope;
    v.quantile_value = sample_quantile(cell.samples, config.quantile);
    v.ratio = v.quantile_value / cell.envelope;
    v.calibration = cell.calibration;
    report.total_trials += cell.samples.size();
    report.cells.push_back(std::move(v));
  }

  // Pass 2: fit each group's constant from its calibration cells.
  std::map<std::string, double> fitted;
  for (const StatCellVerdict& v : report.cells)
    if (v.calibration) {
      auto [it, inserted] = fitted.emplace(v.group, v.ratio);
      if (!inserted) it->second = std::max(it->second, v.ratio);
    }

  // Pass 3: verdicts.
  for (StatCellVerdict& v : report.cells) {
    const auto it = fitted.find(v.group);
    if (it == fitted.end())
      throw ApiError("statcheck: group '" + v.group +
                     "' has no calibration cell");
    // A degenerate calibration (all-zero observations) would make every
    // nonzero observation a failure; use a floor of one observation unit.
    v.constant = std::max(it->second, 1e-12) * config.slack;
    v.bound = v.constant * v.envelope;
    v.pass = v.calibration || v.quantile_value <= v.bound;
  }
  return report;
}

std::string StatReport::summary() const {
  std::ostringstream os;
  for (const StatCellVerdict& c : cells) {
    if (c.pass) continue;
    os << c.label << " [" << c.metric << "]: quantile " << num(quantile)
       << " = " << num(c.quantile_value) << " exceeds bound " << num(c.bound)
       << " (= " << num(c.constant) << " * envelope " << num(c.envelope)
       << ", " << c.trials << " trials)\n";
  }
  return os.str();
}

void write_statcheck_json(
    std::ostream& os, const StatReport& report,
    const std::vector<std::pair<std::string, std::string>>& run_info) {
  os << "{\n  \"schema\": \"asyncgossip-statcheck-v1\",\n  \"run\": {";
  for (std::size_t i = 0; i < run_info.size(); ++i) {
    if (i != 0) os << ", ";
    os << '"' << json_escape(run_info[i].first) << "\": \""
       << json_escape(run_info[i].second) << '"';
  }
  os << "},\n";
  os << "  \"quantile\": " << num(report.quantile) << ",\n";
  os << "  \"slack\": " << num(report.slack) << ",\n";
  os << "  \"total_trials\": " << report.total_trials << ",\n";
  os << "  \"ok\": " << (report.ok() ? "true" : "false") << ",\n";
  os << "  \"cells\": [";
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const StatCellVerdict& c = report.cells[i];
    os << (i == 0 ? "" : ",") << "\n    {\"group\": \""
       << json_escape(c.group) << "\", \"label\": \"" << json_escape(c.label)
       << "\", \"metric\": \"" << json_escape(c.metric)
       << "\", \"trials\": " << c.trials
       << ", \"envelope\": " << num(c.envelope)
       << ", \"quantile_value\": " << num(c.quantile_value)
       << ", \"ratio\": " << num(c.ratio)
       << ", \"constant\": " << num(c.constant)
       << ", \"bound\": " << num(c.bound) << ", \"calibration\": "
       << (c.calibration ? "true" : "false")
       << ", \"pass\": " << (c.pass ? "true" : "false") << '}';
  }
  os << "\n  ]\n}\n";
}

}  // namespace asyncgossip
