// Fundamental identifiers for the simulated distributed system.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace asyncgossip {

/// Process identifier; processes are numbered 0 .. n-1 (the paper's set [n],
/// shifted to zero-based indexing).
using ProcessId = std::uint32_t;

/// Discrete global time, counted in steps from 0. Visible only to the
/// engine, the adversary and the analysis — never to algorithm code, which
/// matches the paper's model (processes have no global clocks).
using Time = std::uint64_t;

/// Monotone per-execution identifier for point-to-point messages.
using MessageId = std::uint64_t;

inline constexpr ProcessId kNoProcess = std::numeric_limits<ProcessId>::max();
inline constexpr Time kTimeMax = std::numeric_limits<Time>::max();
inline constexpr MessageId kNoMessageId = std::numeric_limits<MessageId>::max();

}  // namespace asyncgossip
