// aglint-fixture-as: src/sim/fixture_layering.cpp
// aglint-expect: AG-LAY-001
//
// The simulator layer reaching *up* into the gossip layer inverts the
// include DAG common -> sim -> gossip -> {rt, consensus, lowerbound}.
#include "gossip/tears.h"

namespace asyncgossip {

int layer_inversion() { return 1; }

}  // namespace asyncgossip
