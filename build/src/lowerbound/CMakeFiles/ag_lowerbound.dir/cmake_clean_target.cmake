file(REMOVE_RECURSE
  "libag_lowerbound.a"
)
