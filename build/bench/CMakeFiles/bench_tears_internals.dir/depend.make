# Empty dependencies file for bench_tears_internals.
# This may be replaced when dependencies are built.
