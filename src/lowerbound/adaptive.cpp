#include "lowerbound/adaptive.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/assert.h"
#include "gossip/completion.h"
#include "gossip/rumor.h"
#include "lowerbound/probe.h"

namespace asyncgossip {

ScriptedAdversary::ScriptedAdversary() { set_benign(); }

void ScriptedAdversary::set_benign() {
  decide_ = [](Time, const EngineView& view) {
    StepDecision d;
    d.schedule.reserve(view.n());
    for (ProcessId p = 0; p < view.n(); ++p)
      if (!view.crashed(p)) d.schedule.push_back(p);
    return d;
  };
  delay_ = [](const Envelope&, const EngineView&) { return Time{1}; };
}

const char* to_string(LowerBoundCase c) {
  switch (c) {
    case LowerBoundCase::kSlowPhase1:
      return "slow-phase1";
    case LowerBoundCase::kCase1Messages:
      return "case1-messages";
    case LowerBoundCase::kCase2Time:
      return "case2-time";
  }
  return "?";
}

namespace {

// Shared mutable state between the driver and the scripted adversary
// closures (the driver re-scripts the adversary between phases; the
// closures only read/write this block).
struct DriverState {
  std::size_t n = 0;
  std::size_t s2_start = 0;  // S2 = [s2_start, n)
  Time phase1_end = 0;

  // Case 1 window.
  Time window_end = 0;

  // Case 2.
  ProcessId p = kNoProcess;
  ProcessId q = kNoProcess;
  Time delta_w = 1;
  std::size_t s1_crash_budget = 0;
  std::size_t s1_crashes = 0;
  bool pair_communicated = false;
  bool crash_budget_exceeded = false;

  bool in_s2(ProcessId id) const { return id >= s2_start; }
};

void finish_benignly(Engine& engine, ScriptedAdversary& adv,
                     const LowerBoundConfig& config,
                     LowerBoundReport& report) {
  adv.set_benign();
  Time budget = config.finish_budget;
  if (budget == 0) {
    GossipSpec bspec = config.spec;
    bspec.d = 1;
    bspec.delta = 1;
    budget = default_step_budget(bspec) + engine.now();
  }
  report.completed = engine.run_until(gossip_quiet, budget);
  const Metrics& m = engine.metrics();
  report.completion_time = m.any_send() ? m.last_send_time() + 1 : 0;
  report.total_messages = m.messages_sent();
  report.realized_d = m.realized_d();
  report.realized_delta = m.realized_delta();
  report.crashes_used = engine.crashes_so_far();
  report.gathering_ok = check_gathering(engine);
}

}  // namespace

LowerBoundReport run_lower_bound(const LowerBoundConfig& config) {
  const std::size_t n = config.spec.n;
  const std::size_t f_eff = std::min(config.f, n / 4);
  AG_ASSERT_MSG(f_eff >= 8, "lower-bound construction needs min(f, n/4) >= 8");
  AG_ASSERT_MSG(config.f < n, "f < n required");

  LowerBoundReport report;
  report.n = n;
  report.f_eff = f_eff;
  report.s2_size = f_eff / 2;

  auto state = std::make_shared<DriverState>();
  state->n = n;
  state->s2_start = n - report.s2_size;

  // The engine's enforcement caps: generous enough for every branch of the
  // construction; the *realized* bounds of the final execution are measured
  // and reported.
  EngineConfig ecfg;
  ecfg.d = static_cast<Time>(f_eff) + 2;
  ecfg.delta = 2 * static_cast<Time>(f_eff) + 4;
  ecfg.max_crashes = config.f;

  auto adversary = std::make_unique<ScriptedAdversary>();
  ScriptedAdversary& adv = *adversary;

  GossipSpec pspec = config.spec;
  pspec.f = config.f;  // algorithms size their shut-down phases from f
  Engine engine(make_gossip_processes(pspec), std::move(adversary), ecfg);

  // ---------------------------------------------------------------------
  // Phase 1: run S1 alone, lock-step, all delays 1.
  // ---------------------------------------------------------------------
  adv.set_decide([state](Time, const EngineView& view) {
    StepDecision d;
    for (ProcessId p = 0; p < state->s2_start; ++p)
      if (!view.crashed(p)) d.schedule.push_back(p);
    return d;
  });
  adv.set_delay([](const Envelope&, const EngineView&) { return Time{1}; });

  const auto s1_quiet = [state](const Engine& e) {
    for (ProcessId p = 0; p < state->s2_start; ++p) {
      if (e.crashed(p)) continue;
      const auto* gp = dynamic_cast<const GossipProcess*>(&e.process(p));
      AG_ASSERT_MSG(gp != nullptr, "lower bound needs GossipProcess");
      if (!gp->quiescent() || e.pending_count(p) != 0) return false;
    }
    return true;
  };

  const bool s1_done = engine.run_until(s1_quiet, static_cast<Time>(f_eff));
  state->phase1_end = engine.now();
  report.phase1_end = state->phase1_end;

  if (!s1_done) {
    // t > f_eff: per the proof, crash S2 and we have an execution with
    // d = delta = 1 whose completion time already exceeds f_eff.
    report.outcome = LowerBoundCase::kSlowPhase1;
    adv.set_decide([state, crashed_s2 = false](
                       Time, const EngineView& view) mutable {
      StepDecision d;
      if (!crashed_s2) {
        for (ProcessId p = static_cast<ProcessId>(state->s2_start);
             p < state->n; ++p)
          if (!view.crashed(p)) d.crash.push_back(p);
        crashed_s2 = true;
      }
      for (ProcessId p = 0; p < state->s2_start; ++p)
        if (!view.crashed(p)) d.schedule.push_back(p);
      return d;
    });
    // Keep the S1-only lock-step run going to completion, then report.
    GossipSpec bspec = config.spec;
    bspec.d = 1;
    bspec.delta = 1;
    const Time budget = default_step_budget(bspec) + engine.now();
    report.completed = engine.run_until(gossip_quiet, budget);
    const Metrics& m = engine.metrics();
    report.completion_time = m.any_send() ? m.last_send_time() + 1 : 0;
    report.total_messages = m.messages_sent();
    report.realized_d = m.realized_d();
    report.realized_delta = m.realized_delta();
    report.crashes_used = engine.crashes_so_far();
    report.gathering_ok = check_gathering(engine);
    return report;
  }

  // ---------------------------------------------------------------------
  // Promiscuity probe over S2.
  // ---------------------------------------------------------------------
  const std::size_t k = f_eff / 2;  // isolated local steps per the proof
  const double promiscuity_threshold = static_cast<double>(f_eff) / 32.0;
  std::vector<ProcessId> promiscuous;
  std::vector<ProcessId> shy;  // the proof's set S of non-promiscuous procs
  std::vector<IsolationProbeResult> shy_probe;
  for (ProcessId p = static_cast<ProcessId>(state->s2_start); p < n; ++p) {
    const IsolationProbeResult probe = probe_isolated_sends(
        engine.process(p), p, n, engine.pending_for(p),
        engine.local_steps_of(p), k, config.probe_trials,
        config.spec.seed ^ (0xBADF00DULL + p));
    if (probe.expected_messages >= promiscuity_threshold) {
      promiscuous.push_back(p);
    } else {
      shy.push_back(p);
      shy_probe.push_back(probe);
    }
  }
  report.promiscuous_count = promiscuous.size();

  if (promiscuous.size() >= f_eff / 4) {
    // -------------------------------------------------------------------
    // Case 1: message blow-up. Schedule all of S2 for f_eff/2 steps and
    // delay every message they emit past the window.
    // -------------------------------------------------------------------
    report.outcome = LowerBoundCase::kCase1Messages;
    state->window_end = engine.now() + static_cast<Time>(k);
    adv.set_decide([state](Time, const EngineView& view) {
      StepDecision d;
      for (ProcessId p = static_cast<ProcessId>(state->s2_start);
           p < state->n; ++p)
        if (!view.crashed(p)) d.schedule.push_back(p);
      return d;
    });
    adv.set_delay([state, cap = ecfg.d](const Envelope& env,
                                        const EngineView&) -> Time {
      if (state->in_s2(env.from) && env.to != env.from) return cap;
      return 1;
    });

    std::uint64_t s2_sent_before = 0;
    for (ProcessId p = static_cast<ProcessId>(state->s2_start); p < n; ++p)
      s2_sent_before += engine.metrics().messages_sent_by(p);
    engine.run(static_cast<Time>(k));
    std::uint64_t s2_sent_after = 0;
    for (ProcessId p = static_cast<ProcessId>(state->s2_start); p < n; ++p)
      s2_sent_after += engine.metrics().messages_sent_by(p);
    report.case1_window_messages = s2_sent_after - s2_sent_before;

    finish_benignly(engine, adv, config, report);
    return report;
  }

  // -----------------------------------------------------------------------
  // Case 2: isolate a mutually-silent pair p, q.
  // -----------------------------------------------------------------------
  report.outcome = LowerBoundCase::kCase2Time;
  AG_ASSERT_MSG(shy.size() >= 2, "proof guarantees >= f/4 shy processes");

  // Prefer a pair below the proof's 1/4 threshold in both directions; fall
  // back to the pair minimizing the worse direction.
  std::size_t best_i = 0, best_j = 1;
  double best_score = 2.0;
  bool found_strict = false;
  for (std::size_t i = 0; i < shy.size() && !found_strict; ++i) {
    for (std::size_t j = i + 1; j < shy.size(); ++j) {
      const double pij = shy_probe[i].send_probability[shy[j]];
      const double pji = shy_probe[j].send_probability[shy[i]];
      const double score = std::max(pij, pji);
      if (score < best_score) {
        best_score = score;
        best_i = i;
        best_j = j;
      }
      if (pij < 0.25 && pji < 0.25) {
        best_i = i;
        best_j = j;
        found_strict = true;
        break;
      }
    }
  }
  state->p = shy[best_i];
  state->q = shy[best_j];
  report.pair_p = state->p;
  report.pair_q = state->q;

  state->delta_w = std::max<Time>(1, state->phase1_end);
  report.case2_delta_w = state->delta_w;
  state->s1_crash_budget = f_eff / 4;

  const Time window_start = engine.now();
  const Time window_len = static_cast<Time>(k) * state->delta_w;

  adv.set_decide([state, window_start](Time now, const EngineView& view) {
    StepDecision d;
    // Crash the rest of S2 at the first window step.
    if (now == window_start) {
      for (ProcessId r = static_cast<ProcessId>(state->s2_start);
           r < state->n; ++r)
        if (r != state->p && r != state->q && !view.crashed(r))
          d.crash.push_back(r);
    }
    // Detect pair communication, and behead any S1 process that p or q has
    // contacted before it can react.
    for (ProcessId r = 0; r < state->n; ++r) {
      if (view.crashed(r)) continue;
      const bool is_pair = (r == state->p || r == state->q);
      // Non-pair S2 members are crashed at window start; skip them here.
      if (!is_pair && state->in_s2(r)) continue;
      view.for_each_pending(r, [&](const Envelope& env) {
        if (env.from != state->p && env.from != state->q) return true;
        if (is_pair) {
          if (env.from != r) state->pair_communicated = true;
          return true;
        }
        if (state->s1_crashes < state->s1_crash_budget &&
            view.crash_budget_left() > 0) {
          d.crash.push_back(r);
          ++state->s1_crashes;
        } else {
          state->crash_budget_exceeded = true;
        }
        return false;
      });
    }
    // One local step for p, q (and a delta-consistent step for everyone
    // else) every delta_w global steps.
    if ((now - window_start) % state->delta_w == 0) {
      for (ProcessId r = 0; r < state->n; ++r) {
        if (view.crashed(r)) continue;
        bool about_to_crash = false;
        for (ProcessId c : d.crash)
          if (c == r) about_to_crash = true;
        if (!about_to_crash) d.schedule.push_back(r);
      }
    }
    return d;
  });
  adv.set_delay([](const Envelope&, const EngineView&) { return Time{1}; });

  engine.run(window_len);
  report.case2_window_end = engine.now();
  report.pair_communicated = state->pair_communicated;
  report.crash_budget_exceeded = state->crash_budget_exceeded;
  report.s1_crashes = state->s1_crashes;
  report.construction_ok =
      !state->pair_communicated && !state->crash_budget_exceeded;

  finish_benignly(engine, adv, config, report);
  return report;
}

}  // namespace asyncgossip
