#include "consensus/get_core.h"

#include <gtest/gtest.h>

#include "consensus/canetti_rabin.h"

namespace asyncgossip {
namespace {

InstanceState make_state(std::size_t n, std::vector<std::pair<std::size_t, Val>> items) {
  InstanceState s(n);
  for (const auto& [origin, value] : items) {
    s.origins.set(origin);
    s.items[origin] = value;
  }
  return s;
}

TEST(InstanceState, MergeUnionsOriginsAndItems) {
  InstanceState a = make_state(8, {{0, 1}});
  const InstanceState b = make_state(8, {{1, 0}, {2, 1}});
  EXPECT_TRUE(a.merge(b));
  EXPECT_EQ(a.origins.count(), 3u);
  EXPECT_EQ(a.items[1], 0);
  EXPECT_EQ(a.items[2], 1);
  EXPECT_FALSE(a.merge(b));  // idempotent
}

TEST(InstanceState, MergeKeepsFirstValue) {
  InstanceState a = make_state(4, {{0, 1}});
  const InstanceState b = make_state(4, {{0, 0}});
  a.merge(b);
  EXPECT_EQ(a.items[0], 1);  // existing value wins (values can't conflict
                             // in honest executions)
}

TEST(InstanceState, AddOwn) {
  InstanceState s(4);
  s.add_own(2, kValBot);
  EXPECT_TRUE(s.origins.test(2));
  EXPECT_EQ(s.items[2], kValBot);
}

TEST(GetCore, EstimateVotesUnanimous) {
  EXPECT_EQ(evaluate_estimate_votes(make_state(4, {{0, 1}, {1, 1}, {2, 1}})),
            1);
  EXPECT_EQ(evaluate_estimate_votes(make_state(4, {{0, 0}, {3, 0}})), 0);
}

TEST(GetCore, EstimateVotesMixedGivesBot) {
  EXPECT_EQ(evaluate_estimate_votes(make_state(4, {{0, 0}, {1, 1}})),
            kValBot);
}

TEST(GetCore, EstimateVotesEmptyGivesBot) {
  EXPECT_EQ(evaluate_estimate_votes(InstanceState(4)), kValBot);
}

TEST(GetCore, PreferenceAllSameDecides) {
  const PreferenceOutcome out =
      evaluate_preference_votes(make_state(4, {{0, 1}, {1, 1}, {2, 1}}));
  EXPECT_TRUE(out.decide);
  EXPECT_EQ(out.decision, 1);
  EXPECT_EQ(out.adopt, 1);
  EXPECT_FALSE(out.conflict);
}

TEST(GetCore, PreferenceWithBotAdoptsButNoDecide) {
  const PreferenceOutcome out = evaluate_preference_votes(
      make_state(4, {{0, 0}, {1, kValBot}}));
  EXPECT_FALSE(out.decide);
  EXPECT_EQ(out.adopt, 0);
}

TEST(GetCore, PreferenceAllBotFallsToCoin) {
  const PreferenceOutcome out = evaluate_preference_votes(
      make_state(4, {{0, kValBot}, {1, kValBot}}));
  EXPECT_FALSE(out.decide);
  EXPECT_EQ(out.adopt, kValUnknown);
  EXPECT_FALSE(out.conflict);
}

TEST(GetCore, PreferenceConflictDetected) {
  const PreferenceOutcome out =
      evaluate_preference_votes(make_state(4, {{0, 0}, {1, 1}}));
  EXPECT_TRUE(out.conflict);
  EXPECT_FALSE(out.decide);
}

TEST(GetCore, CoinZeroDominates) {
  EXPECT_EQ(evaluate_coin(make_state(4, {{0, 1}, {1, 0}, {2, 1}})), 0);
  EXPECT_EQ(evaluate_coin(make_state(4, {{0, 1}, {2, 1}})), 1);
  EXPECT_EQ(evaluate_coin(InstanceState(4)), 1);
}

TEST(GetCore, MajorityThreshold) {
  EXPECT_EQ(majority_threshold(4), 3u);
  EXPECT_EQ(majority_threshold(5), 3u);
  EXPECT_EQ(majority_threshold(64), 33u);
}

TEST(Position, Ordering) {
  const Position a{1, 0, 0}, b{1, 0, 1}, c{1, 1, 0}, d{2, 0, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(c, d);
  EXPECT_EQ(a, (Position{1, 0, 0}));
}

// ---------------------------------------------------------------------------
// The common-core property, verified empirically on full executions: for
// each completed exchange, there must exist a set S of more than n/2 origins
// contained in every participant's get-core return. The maximal candidate
// is the intersection of all returns.
// ---------------------------------------------------------------------------

class CommonCore
    : public ::testing::TestWithParam<std::tuple<ExchangeKind, std::uint64_t>> {
};

TEST_P(CommonCore, HoldsOnPhaseOneExchanges) {
  const auto [kind, seed] = GetParam();
  ConsensusSpec spec;
  spec.config.n = 48;
  spec.config.f = 11;
  spec.config.exchange = kind;
  spec.config.log_getcore_returns = true;
  spec.d = 2;
  spec.delta = 2;
  spec.schedule = SchedulePattern::kStaggered;
  spec.inputs = InputPattern::kHalfHalf;
  spec.seed = seed;

  Engine engine = make_consensus_engine(spec);
  engine.run_until(consensus_all_decided, 100000);

  // Collect, per completed exchange position, the intersection of returns.
  for (std::uint32_t phase = 1; phase <= 1; ++phase) {
    for (std::uint8_t exchange = 0; exchange < 3; ++exchange) {
      DynamicBitset intersection(spec.config.n);
      intersection.set_all();
      std::size_t participants = 0;
      for (ProcessId p = 0; p < engine.n(); ++p) {
        const auto& cp = engine.process_as<ConsensusProcess>(p);
        for (const auto& rec : cp.getcore_log()) {
          if (rec.pos.phase == phase && rec.pos.exchange == exchange) {
            // The get-core *return* is the accumulated item set (votes),
            // not the origins counted in the final sub-instance.
            DynamicBitset known(spec.config.n);
            for (std::size_t o = 0; o < spec.config.n; ++o)
              if (rec.returned.items[o] != kValUnknown) known.set(o);
            intersection &= known;
            ++participants;
          }
        }
      }
      if (participants < 2) continue;  // catch-up skipped this exchange
      EXPECT_GT(intersection.count(), spec.config.n / 2)
          << "no majority core for phase " << phase << " exchange "
          << static_cast<int>(exchange) << " (" << participants
          << " participants)";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSeeds, CommonCore,
    ::testing::Combine(::testing::Values(ExchangeKind::kAllToAll,
                                         ExchangeKind::kEars,
                                         ExchangeKind::kSears,
                                         ExchangeKind::kTears),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace asyncgossip
