#include "gossip/lazy.h"

#include "common/assert.h"

namespace asyncgossip {

LazyGossipProcess::LazyGossipProcess(ProcessId id, std::size_t n,
                                     std::size_t fanout, std::uint64_t seed)
    : id_(id),
      n_(n),
      fanout_(fanout),
      rng_(seed ^ (0x1A2B0000ULL + id)),
      rumors_(n) {
  AG_ASSERT_MSG(n > 0 && id < n, "bad process id / n");
  AG_ASSERT_MSG(fanout >= 1 && fanout <= n, "bad fanout");
  rumors_.set(id_);
}

void LazyGossipProcess::step(StepContext& ctx) {
  bool novel = steps_taken_ == 0;  // the initial send is unconditional
  for (const Envelope& env : ctx.received()) {
    const auto* m = payload_cast<LazyPayload>(env);
    if (m != nullptr && rumors_.merge(m->rumors)) novel = true;
  }
  if (steps_taken_ == 0) ctx.probe_phase("lazy-forward");
  if (novel) {
    auto payload = std::make_shared<LazyPayload>();
    payload->rumors = rumors_;
    for (std::uint64_t q : rng_.sample_without_replacement(n_, fanout_))
      ctx.send(static_cast<ProcessId>(q), payload);
  }
  ctx.probe_state(rumors_.count(), 0);
  ++steps_taken_;
}

std::unique_ptr<Process> LazyGossipProcess::clone() const {
  return std::make_unique<LazyGossipProcess>(*this);
}

}  // namespace asyncgossip
