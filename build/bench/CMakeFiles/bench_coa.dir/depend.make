# Empty dependencies file for bench_coa.
# This may be replaced when dependencies are built.
