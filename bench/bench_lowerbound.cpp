// Theorem 1 / Figure 1 reproduction: the adaptive adversary forces every
// gossip protocol into Omega(n + f^2) messages or Omega(f (d + delta)) time.
//
//   rows     : ears (promiscuous -> Case 1 message blow-up),
//              lazy fanout-1 (cascading -> Case 2 time blow-up),
//              trivial (always promiscuous -> Case 1)
//   args     : {f}; n = 4f so that f_eff = f exactly as in the proof
//   counters : case1_msgs (messages wasted inside the Case 1 window),
//              case1_msgs_per_f2 (the Omega(f^2) constant),
//              t_phase1, window_end, msgs_total, completion,
//              which case fired (case1 / case2 / slow rates),
//              construction_ok rate, oblivious_msgs (same algorithm at the
//              same (n, f) under a benign oblivious adversary — the
//              adaptive/oblivious message ratio quantifies the adversary's
//              damage)
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "gossip/harness.h"
#include "lowerbound/adaptive.h"

namespace asyncgossip::bench {

AG_BENCH_SUITE("lowerbound");

namespace {

constexpr int kIterations = 3;

void run_case(benchmark::State& state, GossipAlgorithm alg) {
  const auto f = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 4 * f;

  double case1_msgs = 0, t_phase1 = 0, msgs_total = 0, completion = 0,
         window_end = 0;
  int case1 = 0, case2 = 0, slow = 0, ok = 0, runs = 0;
  double oblivious_msgs = 0;
  std::uint64_t seed = 90001;
  for (auto _ : state) {
    LowerBoundConfig cfg;
    cfg.spec.algorithm = alg;
    cfg.spec.n = n;
    cfg.spec.seed = seed++;
    cfg.spec.lazy_fanout = 1;
    cfg.spec.ears_shutdown_constant = 2.0;
    cfg.f = f;
    const LowerBoundReport r = run_lower_bound(cfg);
    ++runs;
    t_phase1 += static_cast<double>(r.phase1_end);
    msgs_total += static_cast<double>(r.total_messages);
    completion += static_cast<double>(r.completion_time);
    switch (r.outcome) {
      case LowerBoundCase::kCase1Messages:
        ++case1;
        case1_msgs += static_cast<double>(r.case1_window_messages);
        break;
      case LowerBoundCase::kCase2Time:
        ++case2;
        window_end += static_cast<double>(r.case2_window_end);
        break;
      case LowerBoundCase::kSlowPhase1:
        ++slow;
        break;
    }
    ok += r.construction_ok ? 1 : 0;

    // Benign oblivious reference run at the same (n, f).
    GossipSpec obl = cfg.spec;
    obl.f = f;
    obl.d = 1;
    obl.delta = 1;
    obl.schedule = SchedulePattern::kLockStep;
    obl.delay = DelayPattern::kUnitDelay;
    const GossipOutcome base = run_gossip_spec(obl);
    oblivious_msgs += static_cast<double>(base.messages);
    benchmark::DoNotOptimize(r.total_messages);
  }
  const double rr = runs;
  const double ff = static_cast<double>(f);
  state.counters["t_phase1"] = t_phase1 / rr;
  state.counters["msgs_total"] = msgs_total / rr;
  state.counters["completion"] = completion / rr;
  state.counters["case1_rate"] = case1 / rr;
  state.counters["case2_rate"] = case2 / rr;
  state.counters["slow_rate"] = slow / rr;
  state.counters["construct_ok"] = ok / rr;
  state.counters["oblivious_msgs"] = oblivious_msgs / rr;
  if (case1 > 0) {
    state.counters["case1_msgs"] = case1_msgs / case1;
    state.counters["case1_msgs_per_f2"] = case1_msgs / case1 / (ff * ff);
    state.counters["adaptive_vs_oblivious"] =
        (msgs_total / rr) / (oblivious_msgs / rr);
  }
  if (case2 > 0) {
    state.counters["case2_window_end"] = window_end / case2;
    state.counters["case2_window_per_f"] = window_end / case2 / ff;
  }
  record_case(state, std::string("lowerbound-") + to_string(alg) +
                         "/f:" + std::to_string(f));
}

void BM_LowerBound_Ears(benchmark::State& state) {
  run_case(state, GossipAlgorithm::kEars);
}
void BM_LowerBound_Lazy(benchmark::State& state) {
  run_case(state, GossipAlgorithm::kLazy);
}
void BM_LowerBound_Trivial(benchmark::State& state) {
  run_case(state, GossipAlgorithm::kTrivial);
}

BENCHMARK(BM_LowerBound_Ears)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Iterations(kIterations);
BENCHMARK(BM_LowerBound_Lazy)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Iterations(kIterations);
BENCHMARK(BM_LowerBound_Trivial)
    ->Arg(16)->Arg(32)->Arg(64)
    ->Iterations(kIterations);

}  // namespace
}  // namespace asyncgossip::bench
