#include "sim/shrink.h"

#include <vector>

#include "common/assert.h"

namespace asyncgossip {
namespace {

/// All single-step simplifications of `c`, most aggressive first so the
/// greedy loop takes big leaps before fine-tuning. Every candidate is
/// strictly "simpler" under the lexicographic order (crashes, n, patterns,
/// d, delta, horizon, seed), which makes the greedy loop terminate: each
/// accepted candidate strictly decreases a well-founded measure.
std::vector<FuzzCase> candidates(const FuzzCase& c) {
  std::vector<FuzzCase> out;
  const auto push = [&](FuzzCase v) {
    if (v != c) out.push_back(v);
  };

  // Drop or thin the crash set.
  if (c.f > 0) {
    FuzzCase v = c;
    v.f = 0;
    push(v);
    v = c;
    v.f = c.f / 2;
    push(v);
    v = c;
    v.f = c.f - 1;
    push(v);
  }
  // Shrink the population (keep f < n).
  for (std::size_t n : {std::size_t{2}, c.n / 2, c.n - 1}) {
    if (n < 2 || n >= c.n) continue;
    FuzzCase v = c;
    v.n = n;
    if (v.f >= v.n) v.f = v.n - 1;
    push(v);
  }
  // Flatten the patterns.
  if (c.schedule != SchedulePattern::kLockStep) {
    FuzzCase v = c;
    v.schedule = SchedulePattern::kLockStep;
    push(v);
  }
  if (c.delay != DelayPattern::kUnitDelay) {
    FuzzCase v = c;
    v.delay = DelayPattern::kUnitDelay;
    push(v);
  }
  // Flatten the model bounds.
  for (Time d : {Time{1}, c.d / 2, c.d - 1}) {
    if (d < 1 || d >= c.d) continue;
    FuzzCase v = c;
    v.d = d;
    push(v);
  }
  for (Time delta : {Time{1}, c.delta / 2, c.delta - 1}) {
    if (delta < 1 || delta >= c.delta) continue;
    FuzzCase v = c;
    v.delta = delta;
    push(v);
  }
  // Squeeze crashes into the opening steps (simpler to read in a trace).
  for (Time h : {Time{1}, c.crash_horizon / 2}) {
    if (h < 1 || h >= c.crash_horizon) continue;
    FuzzCase v = c;
    v.crash_horizon = h;
    push(v);
  }
  // Canonicalize the seed last: only once the structure is minimal.
  if (c.seed != 1) {
    FuzzCase v = c;
    v.seed = 1;
    push(v);
  }
  return out;
}

}  // namespace

ShrinkResult shrink_case(const FuzzCase& failing, const FuzzVerdict& verdict,
                         const FuzzOracle& oracle,
                         const ShrinkOptions& options) {
  AG_ASSERT_MSG(!verdict.ok, "shrink_case needs a failing case");
  AG_ASSERT_MSG(static_cast<bool>(oracle), "shrink_case needs an oracle");

  ShrinkResult result;
  result.minimal = failing;
  result.verdict = verdict;

  bool improved = true;
  while (improved && result.attempts < options.max_attempts) {
    improved = false;
    ++result.rounds;
    for (const FuzzCase& candidate : candidates(result.minimal)) {
      if (result.attempts >= options.max_attempts) break;
      ++result.attempts;
      FuzzVerdict v = oracle(candidate);
      if (!v.ok) {
        result.minimal = candidate;
        result.verdict = std::move(v);
        improved = true;
        break;  // restart the candidate list from the simpler case
      }
    }
  }
  return result;
}

}  // namespace asyncgossip
