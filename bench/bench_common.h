// Shared helpers for the benchmark harness.
//
// These benchmarks measure *simulation metrics* — global time steps and
// point-to-point message counts, the two complexity measures of the paper —
// not wall-clock time. Each benchmark case therefore runs a fixed small
// number of iterations with distinct seeds and reports the mean metrics as
// user counters; wall time in the report is incidental.
#pragma once

#include <benchmark/benchmark.h>

#include "gossip/harness.h"

namespace asyncgossip::bench {

/// Aggregates gossip outcomes across iterations into counters.
class GossipAccumulator {
 public:
  void add(const GossipOutcome& out) {
    ++runs_;
    messages_ += static_cast<double>(out.messages);
    steps_ += static_cast<double>(out.completion_time);
    gatherings_ += out.gathering_ok ? 1 : 0;
    majorities_ += out.majority_ok ? 1 : 0;
  }

  void flush(benchmark::State& state, double n, double d_plus_delta) const {
    if (runs_ == 0) return;
    const double r = static_cast<double>(runs_);
    state.counters["msgs"] = messages_ / r;
    state.counters["steps"] = steps_ / r;
    state.counters["steps_per_dd"] = steps_ / r / d_plus_delta;
    state.counters["msgs_per_n"] = messages_ / r / n;
    state.counters["gather_ok"] = static_cast<double>(gatherings_) / r;
    state.counters["majority_ok"] = static_cast<double>(majorities_) / r;
  }

 private:
  int runs_ = 0;
  double messages_ = 0;
  double steps_ = 0;
  int gatherings_ = 0;
  int majorities_ = 0;
};

inline GossipSpec base_spec(GossipAlgorithm alg, std::size_t n, std::size_t f,
                            Time d, Time delta) {
  GossipSpec spec;
  spec.algorithm = alg;
  spec.n = n;
  spec.f = f;
  spec.d = d;
  spec.delta = delta;
  spec.schedule =
      delta == 1 ? SchedulePattern::kLockStep : SchedulePattern::kStaggered;
  spec.delay = d == 1 ? DelayPattern::kUnitDelay : DelayPattern::kUniform;
  return spec;
}

}  // namespace asyncgossip::bench
