# CLI contract smoke test for gossiplab:
#   1. every subcommand's --help exits 0;
#   2. an unknown flag and an unknown subcommand exit 2;
#   3. the committed repro fixture replays with a matching trace hash;
#   4. the fault-injection fuzz pipeline finds a failure (exit 1), shrinks
#      it, writes spec + trace artifacts, and the spec artifact replays
#      bit-identically (exit 0) while tracecheck accepts the trace artifact;
#   5. the flight-recorder surface: rt --spans writes a flight log that
#      `gossiplab spans` converts, and the stats-flag contract violations
#      exit 2;
#   6. the UDP multi-process driver: rt --transport udp re-execs one OS
#      process per gossip process, the merged trace lints clean with
#      tracecheck, the JSON report names the multiproc runtime, and the
#      transport-flag contract violations exit 2;
#   7. the serving stack: an inproc loadgen run commits a consistent history
#      (histcheck exits 0), a tampered log is rejected (exit 1), and the
#      serve/loadgen/histcheck flag contracts exit 2.
# Driven by ctest; see tools/CMakeLists.txt.
foreach(var GOSSIPLAB TRACECHECK WORKDIR FIXTURE)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "gossiplab_cli.cmake needs -D${var}=...")
  endif()
endforeach()

# 1. --help for every subcommand.
foreach(sub gossip sweep consensus lowerbound trace report rt fuzz replay
        statcheck spans serve loadgen histcheck)
  execute_process(COMMAND "${GOSSIPLAB}" ${sub} --help
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "gossiplab ${sub} --help exited ${rc}")
  endif()
  if(NOT out MATCHES "usage: gossiplab ${sub}")
    message(FATAL_ERROR "gossiplab ${sub} --help printed no usage line")
  endif()
endforeach()

# 2. Unknown flags and subcommands are rejected with exit 2.
execute_process(COMMAND "${GOSSIPLAB}" gossip --no-such-flag 1
  RESULT_VARIABLE rc ERROR_QUIET OUTPUT_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "unknown flag exited ${rc}, want 2")
endif()
execute_process(COMMAND "${GOSSIPLAB}" frobnicate
  RESULT_VARIABLE rc ERROR_QUIET OUTPUT_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "unknown subcommand exited ${rc}, want 2")
endif()

# 3. The committed fixture replays bit-identically.
execute_process(COMMAND "${GOSSIPLAB}" replay --in "${FIXTURE}"
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fixture replay exited ${rc} (trace hash drifted?)")
endif()

# A corrupted pinned hash must be detected (exit 1).
file(READ "${FIXTURE}" fixture_text)
string(REGEX REPLACE "\"trace_hash\": \"[0-9]+\"" "\"trace_hash\": \"1\""
       tampered_text "${fixture_text}")
set(tampered "${WORKDIR}/gossiplab_cli_tampered.spec.json")
file(WRITE "${tampered}" "${tampered_text}")
execute_process(COMMAND "${GOSSIPLAB}" replay --in "${tampered}"
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "tampered fixture replay exited ${rc}, want 1")
endif()

# 4. The injection pipeline: find -> shrink -> artifacts -> replay.
set(prefix "${WORKDIR}/gossiplab_cli_repro")
execute_process(
  COMMAND "${GOSSIPLAB}" fuzz --iters 20 --seed 3 --inject late-delivery
          --out "${prefix}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "injected fuzz exited ${rc}, want 1 (failure found)")
endif()
if(NOT out MATCHES "injected-audit")
  message(FATAL_ERROR "injected fuzz did not report an injected-audit "
                      "failure:\n${out}")
endif()
foreach(artifact "${prefix}.spec.json" "${prefix}.trace")
  if(NOT EXISTS "${artifact}")
    message(FATAL_ERROR "fuzz did not write ${artifact}")
  endif()
endforeach()
execute_process(COMMAND "${GOSSIPLAB}" replay --in "${prefix}.spec.json"
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "shrunk artifact replay exited ${rc} (not "
                      "bit-identical)")
endif()
execute_process(COMMAND "${TRACECHECK}" "${prefix}.trace"
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tracecheck rejected the fuzz trace artifact "
                      "(exit ${rc})")
endif()

# 5. Flight recorder: rt --spans -> spans conversion round trip, and the
# stats-flag contract (interval 0 and --stats-out alone both exit 2).
set(flight "${WORKDIR}/gossiplab_cli_sample.flight")
execute_process(
  COMMAND "${GOSSIPLAB}" rt --alg ears --n 10 --f 2 --seed 5 --tick-us 100
          --spans "${flight}"
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "rt --spans exited ${rc}")
endif()
if(NOT EXISTS "${flight}")
  message(FATAL_ERROR "rt --spans did not write ${flight}")
endif()
execute_process(
  COMMAND "${GOSSIPLAB}" spans --in "${flight}"
          --out "${WORKDIR}/gossiplab_cli_sample.trace.json"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "spans conversion exited ${rc}")
endif()
if(NOT out MATCHES "delivery wall latency")
  message(FATAL_ERROR "spans printed no latency summary:\n${out}")
endif()
execute_process(COMMAND "${GOSSIPLAB}" spans --in "${WORKDIR}/no_such.flight"
  RESULT_VARIABLE rc ERROR_QUIET OUTPUT_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "spans on a missing input exited ${rc}, want 2")
endif()
execute_process(COMMAND "${GOSSIPLAB}" rt --n 8 --stats-interval-ms 0
  RESULT_VARIABLE rc ERROR_QUIET OUTPUT_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "rt --stats-interval-ms 0 exited ${rc}, want 2")
endif()
execute_process(COMMAND "${GOSSIPLAB}" rt --n 8
          --stats-out "${WORKDIR}/gossiplab_cli_stats.ndjson"
  RESULT_VARIABLE rc ERROR_QUIET OUTPUT_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "rt --stats-out without interval exited ${rc}, want 2")
endif()

# 6. UDP multi-process driver: a small real run over loopback sockets.
set(mp_trace "${WORKDIR}/gossiplab_cli_udp.trace")
set(mp_json "${WORKDIR}/gossiplab_cli_udp.json")
execute_process(
  COMMAND "${GOSSIPLAB}" rt --transport udp --algorithm tears --n 6 --f 1
          --seed 13 --tick-us 200 --record "${mp_trace}" --out "${mp_json}"
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "rt --transport udp exited ${rc}:\n${err}")
endif()
execute_process(COMMAND "${TRACECHECK}" "${mp_trace}"
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tracecheck rejected the merged multiproc trace "
                      "(exit ${rc})")
endif()
file(READ "${mp_json}" mp_report)
if(NOT mp_report MATCHES "\"runtime\": \"realtime-multiproc\"")
  message(FATAL_ERROR "udp rt report does not name the multiproc runtime:\n"
                      "${mp_report}")
endif()
if(NOT mp_report MATCHES "\"audit_violations\": 0")
  message(FATAL_ERROR "udp rt report shows audit violations:\n${mp_report}")
endif()
# Consensus over the multiproc driver: one OS process per replica, the
# ConsensusPayload wire extension on real datagrams, and the aggregated
# verdict (carried via worker note files) must come back clean.
set(cr_json "${WORKDIR}/gossiplab_cli_cr_udp.json")
execute_process(
  COMMAND "${GOSSIPLAB}" rt --transport udp --algorithm cr-ears --n 5 --f 2
          --seed 21 --tick-us 200 --out "${cr_json}"
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "rt --transport udp --algorithm cr-ears exited ${rc}:\n"
                      "${err}")
endif()
if(NOT err MATCHES "consensus: ok")
  message(FATAL_ERROR "multiproc cr-ears run did not report a clean "
                      "consensus verdict:\n${err}")
endif()
file(READ "${cr_json}" cr_report)
if(NOT cr_report MATCHES "consensus_agreement")
  message(FATAL_ERROR "cr-ears udp report carries no consensus summary:\n"
                      "${cr_report}")
endif()

# Transport-flag contracts: wire faults need a UDP transport, and the
# flight recorder / live stats are threaded-driver-only.
execute_process(COMMAND "${GOSSIPLAB}" rt --n 6 --wire-drop 0.1
  RESULT_VARIABLE rc ERROR_QUIET OUTPUT_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "rt --wire-drop without udp exited ${rc}, want 2")
endif()
execute_process(
  COMMAND "${GOSSIPLAB}" rt --transport udp --n 6
          --spans "${WORKDIR}/gossiplab_cli_udp.flight"
  RESULT_VARIABLE rc ERROR_QUIET OUTPUT_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "rt --transport udp --spans exited ${rc}, want 2")
endif()

# 7. Serving stack: inproc loadgen -> committed log + observations ->
# histcheck, plus the tamper and flag contracts.
set(svc_log "${WORKDIR}/gossiplab_cli_svc.log")
set(svc_obs "${WORKDIR}/gossiplab_cli_svc.obs")
execute_process(
  COMMAND "${GOSSIPLAB}" loadgen --target inproc --requests 2000 --n 8 --f 3
          --crashes 1 --seed 9 --log "${svc_log}" --obs "${svc_obs}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "inproc loadgen exited ${rc}:\n${out}${err}")
endif()
if(NOT out MATCHES "-> complete")
  message(FATAL_ERROR "inproc loadgen did not report a complete run:\n${out}")
endif()
execute_process(COMMAND "${GOSSIPLAB}" histcheck --log "${svc_log}"
          --obs "${svc_obs}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "histcheck exited ${rc}:\n${out}")
endif()
# Tamper: rewriting one committed put's value must fail the replay check.
file(READ "${svc_log}" svc_log_text)
string(REGEX REPLACE "(\n[0-9]+ put [^\n]* )v([0-9]+)" "\\1TAMPERED"
       svc_log_tampered "${svc_log_text}")
if(svc_log_tampered STREQUAL svc_log_text)
  message(FATAL_ERROR "tamper regex matched nothing in ${svc_log}")
endif()
set(svc_log_bad "${WORKDIR}/gossiplab_cli_svc_tampered.log")
file(WRITE "${svc_log_bad}" "${svc_log_tampered}")
execute_process(COMMAND "${GOSSIPLAB}" histcheck --log "${svc_log_bad}"
          --obs "${svc_obs}"
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "histcheck on a tampered log exited ${rc}, want 1")
endif()
# Flag contracts.
execute_process(COMMAND "${GOSSIPLAB}" serve
  RESULT_VARIABLE rc ERROR_QUIET OUTPUT_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "serve without --port exited ${rc}, want 2")
endif()
execute_process(COMMAND "${GOSSIPLAB}" loadgen --requests 10
  RESULT_VARIABLE rc ERROR_QUIET OUTPUT_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "loadgen without --target exited ${rc}, want 2")
endif()
execute_process(COMMAND "${GOSSIPLAB}" loadgen --target udp --requests 10
  RESULT_VARIABLE rc ERROR_QUIET OUTPUT_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "loadgen --target udp without --port exited ${rc}, "
                      "want 2")
endif()
execute_process(COMMAND "${GOSSIPLAB}" loadgen --target inproc --rate 100
  RESULT_VARIABLE rc ERROR_QUIET OUTPUT_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "loadgen without --requests/--duration exited ${rc}, "
                      "want 2")
endif()
execute_process(COMMAND "${GOSSIPLAB}" loadgen --target inproc --requests 10
          --value-bytes 0
  RESULT_VARIABLE rc ERROR_QUIET OUTPUT_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "loadgen --value-bytes 0 exited ${rc}, want 2")
endif()
execute_process(COMMAND "${GOSSIPLAB}" loadgen --target inproc --requests 10
          --alg ears
  RESULT_VARIABLE rc ERROR_QUIET OUTPUT_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "loadgen --alg ears (non-consensus) exited ${rc}, "
                      "want 2")
endif()
execute_process(COMMAND "${GOSSIPLAB}" histcheck --log "${svc_log}"
  RESULT_VARIABLE rc ERROR_QUIET OUTPUT_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "histcheck without --obs exited ${rc}, want 2")
endif()

message(STATUS "gossiplab CLI smoke test passed")
