#include "gossip/epidemic.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gossip/completion.h"
#include "gossip/harness.h"

namespace asyncgossip {
namespace {

// Drives a process manually through local steps, outside an engine.
std::vector<StepContext::Outgoing> drive_step(
    Process& p, ProcessId self, std::size_t n,
    const std::vector<Envelope>& inbox, std::uint64_t local_step) {
  StepContext ctx(self, n, local_step, inbox);
  p.step(ctx);
  return std::move(ctx.outbox());
}

Envelope wrap(ProcessId from, ProcessId to, PayloadPtr payload) {
  Envelope env;
  env.from = from;
  env.to = to;
  env.payload = std::move(payload);
  return env;
}

TEST(EarsConfig, ShutdownStepsFormula) {
  const EpidemicConfig cfg = make_ears_config(100, 50, 1, 4.0);
  const double expected = std::ceil(4.0 * (100.0 / 50.0) * std::log(100.0));
  EXPECT_EQ(cfg.shutdown_steps, static_cast<std::uint64_t>(expected));
  EXPECT_EQ(cfg.fanout, 1u);
}

TEST(EarsConfig, ShutdownGrowsWithF) {
  const auto low_f = make_ears_config(128, 8, 1);
  const auto high_f = make_ears_config(128, 120, 1);
  EXPECT_GT(high_f.shutdown_steps, low_f.shutdown_steps);
}

TEST(EarsConfig, RejectsBadParameters) {
  EXPECT_THROW(make_ears_config(10, 10, 1), ModelViolation);
  EpidemicConfig cfg = make_ears_config(10, 5, 1);
  cfg.fanout = 0;
  EXPECT_THROW(EpidemicGossipProcess(0, cfg), ModelViolation);
  cfg = make_ears_config(10, 5, 1);
  cfg.use_informed_list = false;  // needs a fallback budget
  EXPECT_THROW(EpidemicGossipProcess(0, cfg), ModelViolation);
}

TEST(Ears, InitialStateKnowsOwnRumorOnly) {
  EpidemicGossipProcess p(3, make_ears_config(8, 2, 1));
  EXPECT_EQ(p.rumors().count(), 1u);
  EXPECT_TRUE(p.rumors().test(3));
  EXPECT_FALSE(p.progress_done());  // own rumor not yet sent to anyone
  EXPECT_FALSE(p.quiescent());
}

TEST(Ears, SendsExactlyOneMessagePerAwakeStep) {
  EpidemicGossipProcess p(0, make_ears_config(8, 2, 1));
  for (std::uint64_t s = 0; s < 10; ++s) {
    const auto out = drive_step(p, 0, 8, {}, s);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_LT(out[0].to, 8u);
  }
}

TEST(Ears, PayloadCarriesRumorsAndInformedList) {
  EpidemicGossipProcess p(0, make_ears_config(4, 1, 1));
  const auto out = drive_step(p, 0, 4, {}, 0);
  ASSERT_EQ(out.size(), 1u);
  const auto* payload =
      dynamic_cast<const EpidemicPayload*>(out[0].payload.get());
  ASSERT_NE(payload, nullptr);
  EXPECT_TRUE(payload->rumors.test(0));
  // The snapshot is taken before the (rumor, target) pairs are recorded, as
  // in Figure 2 (send on line 18, update I on lines 19-20).
  EXPECT_EQ(payload->informed[0].size(), 0u);
}

TEST(Ears, InformedListRecordsTargets) {
  EpidemicGossipProcess p(0, make_ears_config(4, 1, 1));
  drive_step(p, 0, 4, {}, 0);
  // Second step's payload must contain the pair recorded in step 0.
  const auto out = drive_step(p, 0, 4, {}, 1);
  const auto* payload =
      dynamic_cast<const EpidemicPayload*>(out[0].payload.get());
  ASSERT_NE(payload, nullptr);
  EXPECT_EQ(payload->informed[0].count(), 1u);
}

TEST(Ears, MergesReceivedRumors) {
  const auto cfg = make_ears_config(4, 1, 1);
  EpidemicGossipProcess a(0, cfg), b(1, cfg);
  const auto out = drive_step(a, 0, 4, {}, 0);
  drive_step(b, 1, 4, {wrap(0, 1, out[0].payload)}, 0);
  EXPECT_TRUE(b.rumors().test(0));
  EXPECT_TRUE(b.rumors().test(1));
}

TEST(Ears, ProgressDoneWhenAllRumorsSentEverywhere) {
  // Tiny system: n = 2. After p sends to both targets (itself and the
  // other), every rumor it knows has been sent everywhere.
  EpidemicConfig cfg = make_ears_config(2, 1, 99);
  EpidemicGossipProcess p(0, cfg);
  // Drive until its informed list covers rumor 0 at both targets. Target
  // choice is random, so iterate a few steps.
  for (std::uint64_t s = 0; s < 64 && !p.progress_done(); ++s)
    drive_step(p, 0, 2, {}, s);
  EXPECT_TRUE(p.progress_done());
}

TEST(Ears, GoesQuiescentAfterShutdownPhaseAndWakesOnNews) {
  EpidemicConfig cfg = make_ears_config(2, 1, 5);
  cfg.shutdown_steps = 3;
  EpidemicGossipProcess p(0, cfg);
  std::uint64_t s = 0;
  for (; s < 256 && !p.quiescent(); ++s) drive_step(p, 0, 2, {}, s);
  ASSERT_TRUE(p.quiescent());
  // Asleep: no sends.
  EXPECT_TRUE(drive_step(p, 0, 2, {}, s++).empty());

  // A new rumor arrives (from a 3rd party in a bigger world — simulate by
  // handing it a payload with an unknown rumor): the process must wake.
  auto news = std::make_shared<EpidemicPayload>();
  news->rumors = DynamicBitset(2);
  news->rumors.set(1);
  news->informed.resize(2);
  const auto out = drive_step(p, 0, 2, {wrap(1, 0, news)}, s++);
  EXPECT_FALSE(p.quiescent());
  EXPECT_EQ(out.size(), 1u);  // resumed sending
}

TEST(Ears, SleepCountResetsOnRegression) {
  EpidemicConfig cfg = make_ears_config(2, 1, 5);
  cfg.shutdown_steps = 100;  // stay in shut-down phase
  EpidemicGossipProcess p(0, cfg);
  for (std::uint64_t s = 0; s < 64 && p.sleep_count() < 3; ++s)
    drive_step(p, 0, 2, {}, s);
  ASSERT_GE(p.sleep_count(), 3u);
  auto news = std::make_shared<EpidemicPayload>();
  news->rumors = DynamicBitset(2);
  news->rumors.set(1);
  news->informed.resize(2);
  drive_step(p, 0, 2, {wrap(1, 0, news)}, 999);
  EXPECT_EQ(p.sleep_count(), 0u);
}

TEST(Ears, CloneIsIndependentReplica) {
  EpidemicGossipProcess p(0, make_ears_config(16, 4, 123));
  for (std::uint64_t s = 0; s < 5; ++s) drive_step(p, 0, 16, {}, s);
  auto clone = p.clone();
  // Same future behaviour (same RNG state).
  const auto a = drive_step(p, 0, 16, {}, 5);
  const auto b = drive_step(*clone, 0, 16, {}, 5);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a[0].to, b[0].to);
}

TEST(Ears, ReseedDivergesFuture) {
  EpidemicGossipProcess p(0, make_ears_config(1024, 4, 123));
  auto clone = p.clone();
  clone->reseed(0xDEAD);
  int same = 0;
  for (std::uint64_t s = 0; s < 32; ++s) {
    const auto a = drive_step(p, 0, 1024, {}, s);
    const auto b = drive_step(*clone, 0, 1024, {}, s);
    if (a[0].to == b[0].to) ++same;
  }
  EXPECT_LT(same, 4);  // target choices now independent
}

TEST(EarsAblation, NoInformedListUsesFixedBudget) {
  EpidemicConfig cfg = make_ears_config(8, 2, 7);
  cfg.use_informed_list = false;
  cfg.fallback_step_budget = 5;
  EpidemicGossipProcess p(0, cfg);
  for (std::uint64_t s = 0; s < 5; ++s) {
    EXPECT_FALSE(p.progress_done());
    drive_step(p, 0, 8, {}, s);
  }
  EXPECT_TRUE(p.progress_done());
}

TEST(EarsAblation, InflatesMessageComplexity) {
  GossipSpec with, without;
  with.algorithm = GossipAlgorithm::kEars;
  without.algorithm = GossipAlgorithm::kEarsNoInformedList;
  for (GossipSpec* s : {&with, &without}) {
    s->n = 64;
    s->f = 16;
    s->d = 2;
    s->delta = 2;
    s->schedule = SchedulePattern::kStaggered;
    s->seed = 5;
  }
  const GossipOutcome a = run_gossip_spec(with);
  const GossipOutcome b = run_gossip_spec(without);
  ASSERT_TRUE(a.completed && b.completed);
  ASSERT_TRUE(a.gathering_ok && b.gathering_ok);
  EXPECT_GT(b.messages, 2 * a.messages)
      << "dropping the progress control should cost messages";
}

}  // namespace
}  // namespace asyncgossip
