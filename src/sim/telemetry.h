// Run telemetry: how an execution unfolds, not just how it ends.
//
// The paper's claims are trajectories — EARS's epidemic phase followed by a
// progress-controlled shut-down, SEARS's single-step spam burst, TEARS's
// two-hop majority spread — so end-of-run totals (sim/metrics.h) miss the
// shape the proofs are about. A TelemetryCollector is a passive
// EngineObserver *and* ProbeSink that accumulates, per run:
//
//   (a) a rumor-spread time-series sampled per global step: the informed
//       fraction (known (process, rumor) pairs over n^2), processes with a
//       full rumor set, and informed-list progress, fed by the algorithms'
//       StepContext::probe_state reports;
//   (b) a delivery-latency histogram (latency = receipt - send time, in
//       [1, d + delta - 1]) and an in-flight-message gauge;
//   (c) per-process step / send / delivery counters and crash stamps;
//   (d) phase markers from StepContext::probe_phase (epidemic -> shutdown
//       -> asleep for EARS-family protocols, first-/second-level
//       transmissions for TEARS, round boundaries for sync).
//
// Attachment is via GossipSpec::telemetry (gossip/harness.h) or manually
// with Engine::add_observer + Engine::set_probe_sink. Per the observer
// contract, collection never perturbs the run: a run with telemetry
// attached has the same trace hash and metrics as one without
// (tests/test_telemetry.cpp holds this as a regression test).
// Machine-readable exports live in sim/telemetry_export.h.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "sim/message.h"
#include "sim/observer.h"
#include "sim/probe.h"
#include "sim/types.h"

namespace asyncgossip {

struct TelemetryConfig {
  /// Number of processes (sizes every per-process series).
  std::size_t n = 0;
  /// Delivery bound d of the run. Together with delta it sizes the latency
  /// histogram: a message enters the network for up to d steps and is then
  /// picked up at its recipient's next step, at most delta - 1 steps later,
  /// so conforming receipt latencies lie in [1, d + delta - 1]; anything
  /// beyond lands in the overflow counter.
  Time d = 1;
  /// Scheduling bound delta (echoed into exports).
  Time delta = 1;
  /// Cap on stored spread samples; beyond it, samples are counted as
  /// dropped rather than stored (aggregates stay exact).
  std::size_t max_samples = 1 << 20;
  /// Cap on stored phase markers, same overflow policy.
  std::size_t max_phase_markers = 1 << 16;
};

/// One point of the rumor-spread time-series: the global state at the end
/// of step `time`. Steps in which no event and no probe fired are elided
/// (the series is a right-continuous step function; consumers forward-fill).
struct SpreadSample {
  Time time = 0;
  /// Sum over processes of the last |V(p)| each reported via probe_state.
  /// Monotone: rumor sets only grow, and a crashed process keeps its last
  /// report. The informed fraction is known_pairs / n^2.
  std::uint64_t known_pairs = 0;
  /// Processes whose last report had |V(p)| = n.
  std::uint64_t full_processes = 0;
  /// Sum over processes of their reported fully-informed rumor counts —
  /// the progress-control measure L(p) empties against (0 for algorithms
  /// without an informed list).
  std::uint64_t informed_pairs_complete = 0;
  /// Sent-but-undelivered messages addressed to live processes.
  std::uint64_t in_flight = 0;
  /// Cumulative sends / deliveries up to and including this step.
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
};

/// One probe_phase report: process p announced `phase` at global step time.
struct PhaseMarker {
  Time time = 0;
  ProcessId process = kNoProcess;
  std::string phase;
};

/// Per-process event counters.
struct ProcessTelemetry {
  std::uint64_t steps = 0;
  std::uint64_t sends = 0;
  std::uint64_t deliveries = 0;
  bool crashed = false;
  Time crash_time = kTimeMax;  // kTimeMax while alive
};

class TelemetryCollector final : public EngineObserver, public ProbeSink {
 public:
  explicit TelemetryCollector(const TelemetryConfig& config);

  // EngineObserver (engine events).
  void on_step(Time now, ProcessId p) override;
  void on_send(const Envelope& env) override;
  void on_delivery(const Envelope& env, Time now) override;
  void on_crash(Time now, ProcessId p) override;

  // ProbeSink (algorithm reports).
  void on_phase(Time now, ProcessId p, const char* phase) override;
  void on_state(Time now, ProcessId p, std::uint64_t rumors_known,
                std::uint64_t rumors_fully_informed) override;

  /// Closes the final spread sample and records the run length. Call after
  /// the run; harness entry points that take GossipSpec::telemetry do.
  void finalize(Time end_time);

  // --- accumulated telemetry ---------------------------------------------
  const TelemetryConfig& config() const { return config_; }
  const std::vector<SpreadSample>& spread() const { return spread_; }
  const std::vector<PhaseMarker>& phases() const { return phases_; }
  const std::vector<ProcessTelemetry>& processes() const { return per_process_; }

  /// Delivery-latency histogram: histogram()[k] counts deliveries whose
  /// receipt latency is exactly k steps, k in [1, d + delta - 1] (index 0
  /// is always zero).
  const std::vector<std::uint64_t>& latency_histogram() const { return hist_; }
  /// Deliveries with latency > d + delta - 1 (impossible in a conforming
  /// run).
  std::uint64_t latency_overflow() const { return hist_overflow_; }
  /// Mean / max / count of all observed delivery latencies.
  Summary latency_summary() const;

  std::uint64_t sends_total() const { return sends_total_; }
  std::uint64_t deliveries_total() const { return deliveries_total_; }
  std::uint64_t steps_total() const { return steps_total_; }
  std::uint64_t crashes_total() const { return crashes_total_; }

  /// Current and peak in-flight gauge (peak over end-of-step samples).
  std::uint64_t in_flight() const { return in_flight_; }
  std::uint64_t max_in_flight() const { return max_in_flight_; }

  /// Informed fraction of the latest sample, in [0, 1]: known pairs / n^2.
  double informed_fraction() const;

  /// End of the observed execution as passed to finalize() (0 before).
  Time end_time() const { return end_time_; }
  bool finalized() const { return finalized_; }

  std::uint64_t samples_dropped() const { return samples_dropped_; }
  std::uint64_t phase_markers_dropped() const { return phases_dropped_; }

  /// Resets all accumulated state for reuse across runs.
  void clear();

 private:
  /// Called from every event/probe handler: when `now` has moved past the
  /// step currently being accumulated, close that step's sample.
  void roll_to(Time now);
  void push_sample(Time time);

  TelemetryConfig config_;

  // Spread series state.
  std::vector<std::uint64_t> last_known_;      // last |V(p)| per process
  std::vector<std::uint64_t> last_complete_;   // last fully-informed count
  std::uint64_t known_pairs_ = 0;
  std::uint64_t full_processes_ = 0;
  std::uint64_t informed_pairs_complete_ = 0;
  std::vector<SpreadSample> spread_;
  std::uint64_t samples_dropped_ = 0;
  Time open_step_ = 0;     // the step currently being accumulated
  bool any_activity_ = false;
  bool dirty_ = false;     // something happened since the last stored sample

  // Latency histogram.
  std::vector<std::uint64_t> hist_;  // index = latency, [1, d + delta - 1]
  std::uint64_t hist_overflow_ = 0;
  std::uint64_t latency_sum_ = 0;
  double latency_sq_sum_ = 0.0;
  Time latency_max_ = 0;

  // Gauges and counters.
  std::vector<std::uint64_t> pending_to_;
  std::vector<bool> crashed_;
  std::uint64_t in_flight_ = 0;
  std::uint64_t max_in_flight_ = 0;
  std::uint64_t sends_total_ = 0;
  std::uint64_t deliveries_total_ = 0;
  std::uint64_t steps_total_ = 0;
  std::uint64_t crashes_total_ = 0;
  std::vector<ProcessTelemetry> per_process_;

  // Phase markers.
  std::vector<PhaseMarker> phases_;
  std::uint64_t phases_dropped_ = 0;

  Time end_time_ = 0;
  bool finalized_ = false;
};

}  // namespace asyncgossip
