file(REMOVE_RECURSE
  "CMakeFiles/ag_common.dir/bitset.cpp.o"
  "CMakeFiles/ag_common.dir/bitset.cpp.o.d"
  "CMakeFiles/ag_common.dir/rng.cpp.o"
  "CMakeFiles/ag_common.dir/rng.cpp.o.d"
  "CMakeFiles/ag_common.dir/stats.cpp.o"
  "CMakeFiles/ag_common.dir/stats.cpp.o.d"
  "libag_common.a"
  "libag_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ag_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
