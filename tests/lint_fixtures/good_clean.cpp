// aglint-fixture-as: src/sim/fixture_clean.cpp
// aglint-expect: none
//
// Deterministic, layer-respecting, lock-free code: nothing fires. The
// words random / time / clock / lock appearing in comments or string
// literals must NOT trigger — rules only match real code:
//   std::random_device, rand(), time(NULL), steady_clock, mu.lock()
#include <cstdint>
#include <map>
#include <vector>

namespace asyncgossip {

const char* kBanner = "seeded rand() and steady_clock are fine in strings";

std::uint64_t ordered_checksum(const std::map<std::uint64_t, int>& counters) {
  std::uint64_t acc = 0;
  for (const auto& [id, value] : counters)
    acc = acc * 31 + id + static_cast<std::uint64_t>(value);
  return acc;
}

}  // namespace asyncgossip
