file(REMOVE_RECURSE
  "libag_apps.a"
)
