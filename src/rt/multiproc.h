// Multi-process real-time driver: one OS process per gossip process.
//
// `gossiplab rt --transport udp` re-execs its own binary n times; each
// worker hosts exactly one UdpTransport endpoint and runs the same step
// loop as a threaded worker (rt/driver.h) — same rng derivation, same
// fault plan (make_fault_plan is pure in its inputs, so every worker
// computes the identical crash schedule locally), same StepContext — so
// all eight algorithms run unmodified across process boundaries.
//
// Coordination runs over the same loopback sockets as the data plane,
// with dedicated control frames (rt/wire.h). The protocol tolerates
// datagram loss by repetition; every phase transition is confirmed by a
// frame from the other side:
//
//   worker                         coordinator
//   ------                         -----------
//   Hello{pid}  (repeat)  ------>  learns pid -> data port (src addr)
//               <------  PeerTable + Start  (repeat, once all n joined)
//   step loop; Status{counters} (periodic)  ------>
//               ... coordinator declares the run quiet when two
//                   consecutive status sweeps agree: every worker
//                   quiescent-or-crashed, sends == deliveries +
//                   discarded, and the counter vectors unchanged ...
//               <------  Shutdown (repeat)
//   writes trace file, Bye{pid}  ------>  waitpid, parse, merge
//
// Each worker writes its record as a trace-format-v1 event stream plus
// `#`-prefixed metadata lines (counters, final rumor set, probe reports);
// the coordinator parses the files and feeds merge_rt_logs (rt/merge.h) —
// the same merge, renumbering and realized-bounds computation the
// threaded driver uses, so the merged artifact obeys the same auditor
// contract. Worker message ids are namespaced by pid (pid << 40 | local
// counter): unique across processes, not dense — exactly what the merge's
// renumbering accepts.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rt/driver.h"

namespace asyncgossip {

struct MultiprocConfig {
  /// Run parameters; rt.transport is ignored (this driver is UDP by
  /// definition) and rt.flight / rt.stats_* are unsupported here.
  RtConfig rt;
  /// Path of the binary to re-exec as workers; empty = /proc/self/exe.
  std::string exe_path;
  /// Argument vector tail reproducing the run spec (flag round-trip built
  /// by the CLI); the coordinator appends --worker / --coord-port /
  /// --trace-out per worker.
  std::vector<std::string> worker_args;
  /// Directory for worker trace files; empty = a fresh temp directory,
  /// removed after the merge unless keep_files.
  std::string work_dir;
  bool keep_files = false;
};

struct MultiprocResult {
  RtRunResult run;
  /// All n workers spawned, joined the handshake, and exited zero.
  bool workers_ok = false;
  /// One line per protocol failure (spawn error, handshake timeout,
  /// missing trace file, nonzero exit), for the CLI to print.
  std::vector<std::string> errors;
  /// Backing store for RtProbeRecord::phase pointers parsed from worker
  /// files (the record type carries `const char*` per the probe contract).
  std::vector<std::unique_ptr<std::string>> phase_pool;
};

/// Coordinator: spawns the workers, drives the handshake and quiet
/// detection, merges the worker records. Blocks until the run settles or
/// times out; outcome.completed reflects quiet detection AND clean worker
/// exits.
MultiprocResult run_realtime_udp(const MultiprocConfig& config);

/// Worker entry point (dispatched by the CLI on --worker). Runs gossip
/// process `worker` of config.spec over a single-endpoint UdpTransport,
/// writes the trace file, returns the process exit code (0 = clean).
int run_rt_udp_worker(const RtConfig& config, ProcessId worker,
                      std::uint16_t coord_port, const std::string& trace_out);

}  // namespace asyncgossip
