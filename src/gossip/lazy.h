// Lazy cascading gossip — a deliberately message-frugal protocol used as the
// Case 2 foil for the Theorem 1 adversary.
//
// The lower-bound proof splits rumor-spreading strategies in two: protocols
// that send many messages (Case 1, message blow-up) and protocols that rely
// on *cascading* — send a few messages and count on relays (Case 2, where
// the adversary isolates two processes that never contact each other and
// starves the cascade by crashing would-be helpers). LazyGossip is the
// canonical cascading strategy: a process transmits only when it learns
// something new, forwarding its rumor set to a small number of random
// targets. Under benign schedules the novelty cascade disseminates rumors
// with O(n * fanout) messages; against the adaptive adversary it exhibits
// exactly the Omega(f (d + delta)) completion time of Case 2.
//
// NOTE: LazyGossip intentionally does NOT satisfy the paper's gathering
// requirement in all executions (the cascade can die out); it exists to
// exercise the lower-bound construction, not as a contender in Table 1.
#pragma once

#include <memory>

#include "common/bitset.h"
#include "common/rng.h"
#include "gossip/rumor.h"

namespace asyncgossip {

struct LazyPayload final : Payload {
  DynamicBitset rumors;
  std::size_t byte_size() const override { return rumors.byte_size(); }
};

class LazyGossipProcess final : public GossipProcess {
 public:
  LazyGossipProcess(ProcessId id, std::size_t n, std::size_t fanout,
                    std::uint64_t seed);

  void step(StepContext& ctx) override;
  std::unique_ptr<Process> clone() const override;

  void reseed(std::uint64_t seed) override { rng_ = Xoshiro256SS(seed); }
  const DynamicBitset& rumors() const override { return rumors_; }
  bool quiescent() const override { return steps_taken_ > 0; }
  std::uint64_t local_steps() const override { return steps_taken_; }

 private:
  ProcessId id_;
  std::size_t n_;
  std::size_t fanout_;
  Xoshiro256SS rng_;
  DynamicBitset rumors_;
  std::uint64_t steps_taken_ = 0;
};

}  // namespace asyncgossip
